#include "durable/checkpoint.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <system_error>

#include "analysis/race/annotate.hpp"
#include "durable/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "support/hash.hpp"
#include "trace/callsite.hpp"
#include "trace/merge.hpp"
#include "trace/serialize.hpp"

namespace cham::durable {

namespace {

constexpr const char* kManifestFile = "/manifest.bin";
constexpr const char* kSnapshotFile = "/snapshot.bin";
constexpr const char* kJournalFile = "/journal.bin";

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw std::system_error(errno, std::generic_category(), "mkdir: " + dir);
}

void count(std::string_view name, std::uint64_t delta = 1) {
  if (auto* m = obs::metrics()) m->add_counter(name, {}, delta);
}

}  // namespace

std::vector<std::uint8_t> encode_manifest(const RunManifest& m) {
  trace::ByteWriter w;
  put_string(w, m.workload);
  put_string(w, m.cls);
  w.i32(m.timesteps);
  w.i32(m.procs);
  w.u64(m.k);
  w.i32(m.call_frequency);
  w.i32(m.max_window);
  w.u8(m.policy);
  w.u64(m.seed);
  w.f64(m.degrade_fraction);
  w.u8(m.auto_marker ? 1 : 0);
  put_string(w, m.fault_plan);
  w.u64(m.fault_seed);
  w.u64(m.sched_seed);
  w.i32(m.snapshot_every);
  // The manifest digest pins artifacts to one run configuration, so seal
  // its own envelope with digest 0 (the digest covers this payload).
  return seal(kManifestMagic, kManifestVersion, 0, w.take());
}

RunManifest decode_manifest(const std::vector<std::uint8_t>& bytes) {
  const Envelope env = unseal(kManifestMagic, kManifestVersion, 0, bytes,
                              "manifest");
  trace::ByteReader r(env.payload);
  RunManifest m;
  m.workload = get_string(r);
  m.cls = get_string(r);
  m.timesteps = r.i32();
  m.procs = r.i32();
  m.k = r.u64();
  m.call_frequency = r.i32();
  m.max_window = r.i32();
  m.policy = r.u8();
  m.seed = r.u64();
  m.degrade_fraction = r.f64();
  m.auto_marker = r.u8() != 0;
  m.fault_plan = get_string(r);
  m.fault_seed = r.u64();
  m.sched_seed = r.u64();
  m.snapshot_every = r.i32();
  if (!r.exhausted())
    throw trace::DecodeError("manifest has trailing bytes");
  return m;
}

std::uint64_t RunManifest::digest() const {
  const auto sealed = encode_manifest(*this);
  // Hash the payload portion only (skip the envelope header) so the digest
  // is a pure function of the configuration, not of envelope framing.
  const std::uint64_t h = support::fnv1a64(sealed.data(), sealed.size());
  // Digest 0 is the "don't check" sentinel in unseal(); avoid producing it.
  return h == 0 ? 1 : h;
}

// --- recovery --------------------------------------------------------------

RecoveredState recover(const std::string& dir) {
  RecoveredState out;
  out.manifest = decode_manifest(read_file(dir + kManifestFile));
  const std::uint64_t digest = out.manifest.digest();

  std::vector<trace::TraceNode> online;
  if (file_exists(dir + kSnapshotFile)) {
    const ProtocolSnapshot snap =
        decode_snapshot(read_file(dir + kSnapshotFile), digest);
    out.epoch = out.snapshot_epoch = snap.epoch;
    out.finalized = snap.finalized;
    online = trace::decode_trace(snap.online_wire);
    out.clusters_wire = snap.clusters_wire;
    out.state_counts = snap.state_counts;
    out.effective_k = snap.effective_k;
    out.num_callpaths = snap.num_callpaths;
    out.gap_ranks = snap.gap_ranks;
    out.sites = snap.sites;
    out.ranks = snap.ranks;
  }

  if (!file_exists(dir + kJournalFile)) {
    out.online_wire = trace::encode_trace(online);
    return out;
  }
  const JournalImage journal = parse_journal(read_file(dir + kJournalFile), digest);
  out.journal_torn_tail = journal.torn_tail;

  // Replay committed epochs in file order. Rank records accumulate in
  // `pending`; a delta frame commits the epoch iff every participating rank
  // has a matching record (the pre-delta barrier guarantees this on any
  // crash — only corruption can violate it).
  std::map<std::int32_t, RankRecord> pending;
  std::set<std::int32_t> gaps(out.gap_ranks.begin(), out.gap_ranks.end());
  for (const JournalRecord& rec : journal.records) {
    if (rec.type == RecordType::kRankRecord) {
      trace::ByteReader rr_reader(rec.payload);
      RankRecord rr = decode_rank_record(rr_reader);
      if (!rr_reader.exhausted())
        throw trace::DecodeError("journal: rank record has trailing bytes");
      pending.insert_or_assign(rr.rank, std::move(rr));
      continue;
    }
    const EpochDelta delta = decode_epoch_delta(rec.payload);
    // Epochs at or before the snapshot are already folded in; they linger
    // only when a crash hit between the snapshot rename and journal swap.
    if (delta.epoch <= out.snapshot_epoch &&
        !(delta.final_epoch && !out.finalized))
      continue;
    for (const std::int32_t rank : delta.live) {
      const auto it = pending.find(rank);
      if (it == pending.end() || it->second.epoch != delta.epoch ||
          it->second.final_epoch != delta.final_epoch)
        throw trace::DecodeError(
            "journal: epoch delta without matching rank records");
    }
    const auto gap_nodes = trace::decode_trace(delta.gaps_wire);
    for (const auto& node : gap_nodes) online.push_back(node);
    for (const auto& node : gap_nodes)
      if (node.event.op == sim::Op::kGap)
        gaps.insert(static_cast<std::int32_t>(node.event.tag));
    // The interval image is raw staging — empty (0 bytes, not an encoded
    // empty trace) on epochs without a lead merge.
    if (!delta.interval_wire.empty())
      trace::append_online(online, trace::decode_trace(delta.interval_wire),
                           out.manifest.max_window);
    out.clusters_wire = delta.clusters_wire;
    out.state_counts = delta.state_counts;
    out.effective_k = delta.effective_k;
    out.num_callpaths = delta.num_callpaths;
    out.epoch = delta.epoch;
    out.finalized = delta.final_epoch;
    out.ranks.clear();
    for (const std::int32_t rank : delta.live) out.ranks.push_back(pending.at(rank));
    ++out.journal_epochs_replayed;
  }
  out.gap_ranks.assign(gaps.begin(), gaps.end());
  out.online_wire = trace::encode_trace(online);
  return out;
}

// --- Checkpointer ----------------------------------------------------------

struct Checkpointer::Impl {
  std::string dir;
  RunManifest manifest;
  std::uint64_t digest = 0;
  CheckpointerOptions opts;
  JournalWriter journal;

  mutable std::mutex mu;
  std::map<std::int32_t, RankRecord> latest;  // newest record per rank
  std::set<std::int32_t> gap_ranks;           // cumulative mourned leads
  std::vector<std::pair<std::uint64_t, std::string>> sites_base;
  std::uint64_t epochs_committed = 0;
  std::uint64_t snapshot_epoch = 0;  // epoch covered by snapshot.bin
  bool snapshot_finalized = false;
  std::uint64_t snapshots = 0;
  std::uint64_t records = 0;

  void roll_snapshot(const EpochDelta& delta,
                     const std::vector<std::uint8_t>& online_wire) {
    ProtocolSnapshot snap;
    snap.epoch = delta.epoch;
    snap.finalized = delta.final_epoch;
    snap.online_wire = online_wire;
    snap.clusters_wire = delta.clusters_wire;
    snap.state_counts = delta.state_counts;
    snap.effective_k = delta.effective_k;
    snap.num_callpaths = delta.num_callpaths;
    snap.gap_ranks.assign(gap_ranks.begin(), gap_ranks.end());
    snap.sites = trace::export_sites();
    snap.ranks.reserve(delta.live.size());
    for (const std::int32_t rank : delta.live) {
      const auto it = latest.find(rank);
      if (it != latest.end()) snap.ranks.push_back(it->second);
    }
    // Publish the snapshot first, then swap in an empty journal. A crash
    // between the two leaves stale deltas (epoch <= snapshot) in the
    // journal; recover() skips them, so the window is benign.
    write_file_atomic(dir + kSnapshotFile, encode_snapshot(snap, digest));
    journal.close();
    const std::string fresh = dir + kJournalFile + std::string(".new");
    {
      JournalWriter next;
      next.create(fresh, digest);
    }
    write_file_atomic_rename(fresh, dir + kJournalFile);
    journal.open_append(dir + kJournalFile);
    snapshot_epoch = delta.epoch;
    snapshot_finalized = delta.final_epoch;
    ++snapshots;
    count("cham.durable.snapshots");
    if (auto* tl = obs::timeline())
      tl->instant(obs::Timeline::kSchedulerTid, "durable.snapshot", "durable",
                  {obs::arg_int("epoch", static_cast<std::int64_t>(delta.epoch))});
  }

  static void write_file_atomic_rename(const std::string& from,
                                       const std::string& to);
};

void Checkpointer::Impl::write_file_atomic_rename(const std::string& from,
                                                  const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0)
    throw std::system_error(errno, std::generic_category(),
                            "rename: " + from + " -> " + to);
  // Make the rename durable: without this, post-snapshot journal appends
  // could land in an inode the directory no longer references after a crash.
  const auto slash = to.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : to.substr(0, slash));
}

Checkpointer::Checkpointer() : impl_(new Impl) {}
Checkpointer::~Checkpointer() = default;

std::unique_ptr<Checkpointer> Checkpointer::create(const std::string& dir,
                                                   const RunManifest& manifest,
                                                   CheckpointerOptions opts) {
  ensure_dir(dir);
  std::unique_ptr<Checkpointer> cp(new Checkpointer);
  Impl& im = *cp->impl_;
  im.dir = dir;
  im.manifest = manifest;
  im.digest = manifest.digest();
  im.opts = opts;
  if (im.opts.snapshot_every < 1) im.opts.snapshot_every = 1;
  write_file_atomic(dir + kManifestFile, encode_manifest(manifest));
  im.journal.create(dir + kJournalFile, im.digest);
  return cp;
}

std::unique_ptr<Checkpointer> Checkpointer::attach(
    const std::string& dir, const RecoveredState& recovered,
    CheckpointerOptions opts) {
  std::unique_ptr<Checkpointer> cp(new Checkpointer);
  Impl& im = *cp->impl_;
  im.dir = dir;
  im.manifest = recovered.manifest;
  im.digest = recovered.manifest.digest();
  im.opts = opts;
  if (im.opts.snapshot_every < 1) im.opts.snapshot_every = 1;
  im.snapshot_epoch = recovered.snapshot_epoch;
  im.epochs_committed = recovered.epoch;
  trace::import_sites(recovered.sites);
  im.gap_ranks.insert(recovered.gap_ranks.begin(), recovered.gap_ranks.end());
  for (const RankRecord& rec : recovered.ranks)
    im.latest.insert_or_assign(rec.rank, rec);
  // Fold the replayed journal into a fresh snapshot immediately: the old
  // journal's tail may be torn, and appending after a torn frame would
  // corrupt it for the *next* recovery.
  EpochDelta base;
  base.epoch = recovered.epoch;
  base.final_epoch = recovered.finalized;
  base.clusters_wire = recovered.clusters_wire;
  base.state_counts = recovered.state_counts;
  base.effective_k = recovered.effective_k;
  base.num_callpaths = recovered.num_callpaths;
  for (const RankRecord& rec : recovered.ranks) base.live.push_back(rec.rank);
  im.roll_snapshot(base, recovered.online_wire);
  return cp;
}

void Checkpointer::append_rank_record(const RankRecord& record) {
  Impl& im = *impl_;
  RACE_ATOMIC("durable.journal", 0, 0);
  const std::lock_guard<std::mutex> lock(im.mu);
  im.journal.append(RecordType::kRankRecord,
                    [&] {
                      trace::ByteWriter w;
                      encode_rank_record(w, record);
                      return w.take();
                    }());
  im.latest.insert_or_assign(record.rank, record);
  ++im.records;
  count("cham.durable.rank_records");
}

void Checkpointer::commit_epoch(const EpochDelta& delta,
                                const std::vector<std::uint8_t>& online_wire) {
  Impl& im = *impl_;
  RACE_ATOMIC("durable.journal", 0, 0);
  const std::lock_guard<std::mutex> lock(im.mu);
  const auto gap_nodes = trace::decode_trace(delta.gaps_wire);
  for (const auto& node : gap_nodes)
    if (node.event.op == sim::Op::kGap)
      im.gap_ranks.insert(static_cast<std::int32_t>(node.event.tag));
  im.journal.append(RecordType::kEpochDelta, encode_epoch_delta(delta));
  im.journal.sync();  // commit point: the epoch is now durable
  im.epochs_committed = delta.epoch;
  ++im.records;
  count("cham.durable.commits");
  if (auto* tl = obs::timeline())
    tl->instant(obs::Timeline::kSchedulerTid, "durable.commit", "durable",
                {obs::arg_int("epoch", static_cast<std::int64_t>(delta.epoch))});

  const bool due = delta.final_epoch ||
                   (delta.epoch >= im.snapshot_epoch +
                                       static_cast<std::uint64_t>(im.opts.snapshot_every));
  if (due) im.roll_snapshot(delta, online_wire);

  if (im.opts.kill_after_epoch != 0 &&
      delta.epoch >= im.opts.kill_after_epoch && !delta.final_epoch) {
    // Test hook: die exactly like a power cut, with epoch `delta.epoch`
    // durable and nothing of the next epoch written.
    std::raise(SIGKILL);
  }
}

std::optional<RankRecord> Checkpointer::latest_rank_record(
    std::int32_t rank) const {
  const Impl& im = *impl_;
  RACE_ATOMIC("durable.journal", 0, 0);
  const std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.latest.find(rank);
  if (it == im.latest.end()) return std::nullopt;
  return it->second;
}

const RunManifest& Checkpointer::manifest() const { return impl_->manifest; }

std::uint64_t Checkpointer::epochs_committed() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->epochs_committed;
}
std::uint64_t Checkpointer::snapshots_written() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->snapshots;
}
std::uint64_t Checkpointer::records_appended() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->records;
}
std::uint64_t Checkpointer::fsyncs() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->journal.syncs();
}

}  // namespace cham::durable
