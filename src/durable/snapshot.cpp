#include "durable/snapshot.hpp"

#include "durable/wire.hpp"

namespace cham::durable {

namespace {
// Flag bits of the RankRecord bitfield byte.
constexpr std::uint8_t kFinalEpoch = 1u << 0;
constexpr std::uint8_t kFirstMarker = 1u << 1;
constexpr std::uint8_t kReclustering = 1u << 2;
constexpr std::uint8_t kLeadPhase = 1u << 3;
constexpr std::uint8_t kStoring = 1u << 4;

// Minimum encoded size of one rank record / one site entry, used to bound
// count fields by the bytes actually remaining.
constexpr std::size_t kMinRankRecordBytes = 8 + 4 + 1 + 8 + 8 + 8 + 8;
constexpr std::size_t kMinSiteBytes = 8 + 4;
}  // namespace

void encode_rank_record(trace::ByteWriter& w, const RankRecord& rec) {
  w.u64(rec.epoch);
  w.i32(rec.rank);
  std::uint8_t flags = 0;
  if (rec.final_epoch) flags |= kFinalEpoch;
  if (rec.first_marker) flags |= kFirstMarker;
  if (rec.reclustering) flags |= kReclustering;
  if (rec.lead_phase) flags |= kLeadPhase;
  if (rec.storing) flags |= kStoring;
  w.u8(flags);
  w.u64(rec.old_callpath);
  w.u64(rec.markers_seen);
  w.u64(rec.auto_site);
  put_blob(w, rec.intra_wire);
}

RankRecord decode_rank_record(trace::ByteReader& r) {
  RankRecord rec;
  rec.epoch = r.u64();
  rec.rank = r.i32();
  const std::uint8_t flags = r.u8();
  rec.final_epoch = (flags & kFinalEpoch) != 0;
  rec.first_marker = (flags & kFirstMarker) != 0;
  rec.reclustering = (flags & kReclustering) != 0;
  rec.lead_phase = (flags & kLeadPhase) != 0;
  rec.storing = (flags & kStoring) != 0;
  rec.old_callpath = r.u64();
  rec.markers_seen = r.u64();
  rec.auto_site = r.u64();
  rec.intra_wire = get_blob(r);
  return rec;
}

std::vector<std::uint8_t> encode_snapshot(const ProtocolSnapshot& snap,
                                          std::uint64_t config_digest) {
  trace::ByteWriter w;
  w.u64(snap.epoch);
  w.u8(snap.finalized ? 1 : 0);
  put_blob(w, snap.online_wire);
  put_blob(w, snap.clusters_wire);
  for (const std::uint64_t c : snap.state_counts) w.u64(c);
  w.u64(snap.effective_k);
  w.u64(snap.num_callpaths);
  w.u32(static_cast<std::uint32_t>(snap.gap_ranks.size()));
  for (const std::int32_t rank : snap.gap_ranks) w.i32(rank);
  w.u32(static_cast<std::uint32_t>(snap.sites.size()));
  for (const auto& [id, name] : snap.sites) {
    w.u64(id);
    put_string(w, name);
  }
  w.u32(static_cast<std::uint32_t>(snap.ranks.size()));
  for (const auto& rec : snap.ranks) encode_rank_record(w, rec);
  return seal(kSnapshotMagic, kSnapshotVersion, config_digest, w.take());
}

ProtocolSnapshot decode_snapshot(const std::vector<std::uint8_t>& bytes,
                                 std::uint64_t config_digest) {
  const Envelope env =
      unseal(kSnapshotMagic, kSnapshotVersion, config_digest, bytes, "snapshot");
  trace::ByteReader r(env.payload);
  ProtocolSnapshot snap;
  snap.epoch = r.u64();
  snap.finalized = r.u8() != 0;
  snap.online_wire = get_blob(r);
  snap.clusters_wire = get_blob(r);
  for (std::uint64_t& c : snap.state_counts) c = r.u64();
  snap.effective_k = r.u64();
  snap.num_callpaths = r.u64();
  const std::uint32_t ngaps = r.u32();
  if (ngaps > r.remaining() / 4)
    throw trace::DecodeError("snapshot gap count exceeds buffer");
  snap.gap_ranks.reserve(ngaps);
  for (std::uint32_t i = 0; i < ngaps; ++i) snap.gap_ranks.push_back(r.i32());
  const std::uint32_t nsites = r.u32();
  if (nsites > r.remaining() / kMinSiteBytes)
    throw trace::DecodeError("snapshot site count exceeds buffer");
  snap.sites.reserve(nsites);
  for (std::uint32_t i = 0; i < nsites; ++i) {
    const std::uint64_t id = r.u64();
    snap.sites.emplace_back(id, get_string(r));
  }
  const std::uint32_t nranks = r.u32();
  if (nranks > r.remaining() / kMinRankRecordBytes)
    throw trace::DecodeError("snapshot rank count exceeds buffer");
  snap.ranks.reserve(nranks);
  for (std::uint32_t i = 0; i < nranks; ++i)
    snap.ranks.push_back(decode_rank_record(r));
  if (!r.exhausted())
    throw trace::DecodeError("snapshot has trailing bytes");
  return snap;
}

}  // namespace cham::durable
