// Versioned epoch snapshots of the full Chameleon protocol state.
//
// A snapshot is everything a resumed run needs that is not derivable by
// replaying the (deterministic) workload: the home rank's online trace, the
// cluster table, absolute epoch counters, the set of ranks already mourned
// with GAP nodes, the call-site intern table, and one RankRecord per live
// rank capturing its protocol flags and partially folded intra-node trace.
// Snapshots are published crash-atomically (wire.hpp) and checksummed; any
// mismatch — truncation, bit flips, future versions, a different run's
// config digest — surfaces as trace::DecodeError.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/serialize.hpp"

namespace cham::durable {

inline constexpr std::uint16_t kSnapshotVersion = 1;

/// Per-rank protocol state at an epoch boundary. Written by the owning rank
/// fiber right after it finishes its epoch work (single-writer, so journal
/// appends never race under ChamRace) and re-adopted verbatim on resume —
/// or by a promoted lead restoring a dead lead's trace.
struct RankRecord {
  std::uint64_t epoch = 0;  ///< epochs processed when this was captured
  std::int32_t rank = 0;
  bool final_epoch = false;  ///< captured by finalize, not a marker epoch
  bool first_marker = false;
  bool reclustering = true;
  bool lead_phase = false;
  bool storing = true;
  std::uint64_t old_callpath = 0;
  std::uint64_t markers_seen = 0;
  std::uint64_t auto_site = 0;
  /// encode_trace() image of the rank's partial intra-node trace.
  std::vector<std::uint8_t> intra_wire;
};

struct ProtocolSnapshot {
  std::uint64_t epoch = 0;   ///< epochs committed when taken
  bool finalized = false;    ///< true only for post-finalize snapshots
  /// encode_trace() image of the home rank's online trace.
  std::vector<std::uint8_t> online_wire;
  /// ClusterSet::encode() image of the current cluster table.
  std::vector<std::uint8_t> clusters_wire;
  std::array<std::uint64_t, 4> state_counts{};  ///< cumulative AT/C/L/F
  std::uint64_t effective_k = 0;
  std::uint64_t num_callpaths = 0;
  std::vector<std::int32_t> gap_ranks;  ///< dead leads already mourned
  std::vector<std::pair<std::uint64_t, std::string>> sites;
  std::vector<RankRecord> ranks;  ///< live ranks at `epoch`
};

void encode_rank_record(trace::ByteWriter& w, const RankRecord& rec);
RankRecord decode_rank_record(trace::ByteReader& r);

/// Sealed (enveloped) snapshot image ready for write_file_atomic.
std::vector<std::uint8_t> encode_snapshot(const ProtocolSnapshot& snap,
                                          std::uint64_t config_digest);
/// Verify the envelope against `config_digest` and decode. Throws
/// trace::DecodeError on any corruption or version skew.
ProtocolSnapshot decode_snapshot(const std::vector<std::uint8_t>& bytes,
                                 std::uint64_t config_digest);

}  // namespace cham::durable
