// Durable wire envelopes and file primitives.
//
// Every artifact ChamDurable puts on disk (manifest, snapshot, journal) is
// wrapped in the same self-describing envelope: magic, format version, the
// run's config digest (so artifacts from different runs can never be mixed),
// payload length, and an FNV-1a checksum over the payload. Decoding verifies
// all of it and throws trace::DecodeError — never crashes, hangs or
// allocates past the input size — which is the contract the corruption
// injector (corrupt.hpp) drives every path to.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/serialize.hpp"

namespace cham::durable {

/// Artifact magics ("CHM1"/"CHS1"/"CHJ1" little-endian).
inline constexpr std::uint32_t kManifestMagic = 0x314D4843;
inline constexpr std::uint32_t kSnapshotMagic = 0x31534843;
inline constexpr std::uint32_t kJournalMagic = 0x314A4843;

/// Wrap a payload in the versioned, checksummed envelope.
std::vector<std::uint8_t> seal(std::uint32_t magic, std::uint16_t version,
                               std::uint64_t config_digest,
                               const std::vector<std::uint8_t>& payload);

struct Envelope {
  std::uint16_t version = 0;
  std::uint64_t config_digest = 0;
  std::vector<std::uint8_t> payload;
};

/// Verify magic/version/length/checksum and extract the payload. Pass
/// `expect_digest` != 0 to also pin the config digest; `max_version` rejects
/// future-versioned artifacts with a clear diagnostic.
Envelope unseal(std::uint32_t magic, std::uint16_t max_version,
                std::uint64_t expect_digest,
                const std::vector<std::uint8_t>& bytes,
                std::string_view what);

/// Length-prefixed string/blob helpers shared by the durable encoders. The
/// readers bound the declared length by the bytes remaining.
void put_string(trace::ByteWriter& w, std::string_view s);
std::string get_string(trace::ByteReader& r);
void put_blob(trace::ByteWriter& w, const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> get_blob(trace::ByteReader& r);

// --- file primitives (throw std::system_error on OS failures) -------------

/// Whole-file read. Missing file throws std::system_error(ENOENT).
std::vector<std::uint8_t> read_file(const std::string& path);
[[nodiscard]] bool file_exists(const std::string& path);

/// Write to `path` and fsync the file (not the directory).
void write_file_sync(const std::string& path,
                     const std::vector<std::uint8_t>& bytes);

/// Crash-atomic publish: write `<path>.tmp`, fsync, rename over `path`,
/// fsync the containing directory. Readers see the old image or the new
/// one, never a torn file.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// fsync a directory so a completed rename survives a crash.
void fsync_dir(const std::string& dir);

}  // namespace cham::durable
