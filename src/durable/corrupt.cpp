#include "durable/corrupt.hpp"

#include <algorithm>
#include <sstream>

#include "support/rng.hpp"

namespace cham::durable {

namespace {
const char* kind_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kTruncate: return "truncate";
    case MutationKind::kBitFlip: return "bitflip";
    case MutationKind::kZeroRun: return "zero_run";
    case MutationKind::kSplice: return "splice";
    case MutationKind::kDuplicate: return "duplicate";
    case MutationKind::kDelete: return "delete";
  }
  return "?";
}
}  // namespace

std::string MutationReport::to_string() const {
  std::ostringstream os;
  os << kind_name(kind) << "@" << offset << "+" << length;
  return os.str();
}

std::vector<std::uint8_t> mutate_image(std::vector<std::uint8_t> image,
                                       std::uint64_t seed,
                                       MutationReport* report) {
  if (image.empty()) return image;
  support::Rng rng(seed ^ 0xD0B1E5EEDull);
  MutationReport rep;
  rep.kind = static_cast<MutationKind>(rng.next_below(6));
  const std::size_t size = image.size();
  switch (rep.kind) {
    case MutationKind::kTruncate: {
      // Keep a strict prefix (possibly empty) — models a torn write.
      rep.offset = static_cast<std::size_t>(rng.next_below(size));
      rep.length = size - rep.offset;
      image.resize(rep.offset);
      break;
    }
    case MutationKind::kBitFlip: {
      rep.length = 1 + static_cast<std::size_t>(rng.next_below(8));
      rep.offset = static_cast<std::size_t>(rng.next_below(size));
      for (std::size_t i = 0; i < rep.length; ++i) {
        const std::size_t at = static_cast<std::size_t>(rng.next_below(size));
        image[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      break;
    }
    case MutationKind::kZeroRun: {
      rep.offset = static_cast<std::size_t>(rng.next_below(size));
      rep.length = 1 + static_cast<std::size_t>(rng.next_below(
                           std::min<std::size_t>(size - rep.offset, 64)));
      // Zeroing zeros is a no-op mutation; force at least one changed byte.
      std::fill_n(image.begin() + static_cast<std::ptrdiff_t>(rep.offset),
                  rep.length, std::uint8_t{0});
      image[rep.offset] ^= 0xFF;
      break;
    }
    case MutationKind::kSplice: {
      rep.length = 1 + static_cast<std::size_t>(rng.next_below(
                           std::min<std::size_t>(size, 64)));
      rep.offset = static_cast<std::size_t>(rng.next_below(size - rep.length + 1));
      const std::size_t from =
          static_cast<std::size_t>(rng.next_below(size - rep.length + 1));
      std::vector<std::uint8_t> chunk(
          image.begin() + static_cast<std::ptrdiff_t>(from),
          image.begin() + static_cast<std::ptrdiff_t>(from + rep.length));
      std::copy(chunk.begin(), chunk.end(),
                image.begin() + static_cast<std::ptrdiff_t>(rep.offset));
      image[rep.offset] ^= 0x5A;  // ensure the image actually changed
      break;
    }
    case MutationKind::kDuplicate: {
      rep.length = 1 + static_cast<std::size_t>(rng.next_below(
                           std::min<std::size_t>(size, 64)));
      const std::size_t from =
          static_cast<std::size_t>(rng.next_below(size - rep.length + 1));
      rep.offset = static_cast<std::size_t>(rng.next_below(size + 1));
      std::vector<std::uint8_t> chunk(
          image.begin() + static_cast<std::ptrdiff_t>(from),
          image.begin() + static_cast<std::ptrdiff_t>(from + rep.length));
      image.insert(image.begin() + static_cast<std::ptrdiff_t>(rep.offset),
                   chunk.begin(), chunk.end());
      break;
    }
    case MutationKind::kDelete: {
      rep.length = 1 + static_cast<std::size_t>(rng.next_below(
                           std::min<std::size_t>(size, 64)));
      rep.offset = static_cast<std::size_t>(rng.next_below(size - rep.length + 1));
      image.erase(image.begin() + static_cast<std::ptrdiff_t>(rep.offset),
                  image.begin() + static_cast<std::ptrdiff_t>(rep.offset + rep.length));
      break;
    }
  }
  if (report != nullptr) *report = rep;
  return image;
}

}  // namespace cham::durable
