#include "durable/wire.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <system_error>

#include "support/hash.hpp"

namespace cham::durable {

namespace {

// Envelope layout: magic u32, version u16, config_digest u64, payload_len
// u64, checksum u64, payload bytes.
constexpr std::size_t kEnvelopeHeader = 4 + 2 + 8 + 8 + 8;

[[noreturn]] void throw_sys(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) throw_sys("open for fsync: " + path);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_sys("fsync: " + path);
  }
  ::close(fd);
}

}  // namespace

std::vector<std::uint8_t> seal(std::uint32_t magic, std::uint16_t version,
                               std::uint64_t config_digest,
                               const std::vector<std::uint8_t>& payload) {
  trace::ByteWriter w;
  w.reserve(kEnvelopeHeader + payload.size());
  w.u32(magic);
  w.u16(version);
  w.u64(config_digest);
  w.u64(payload.size());
  w.u64(support::fnv1a64(payload.data(), payload.size()));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

Envelope unseal(std::uint32_t magic, std::uint16_t max_version,
                std::uint64_t expect_digest,
                const std::vector<std::uint8_t>& bytes,
                std::string_view what) {
  const std::string tag(what);
  if (bytes.size() < kEnvelopeHeader)
    throw trace::DecodeError(tag + ": header truncated");
  trace::ByteReader r(bytes);
  if (r.u32() != magic) throw trace::DecodeError(tag + ": bad magic");
  Envelope env;
  env.version = r.u16();
  if (env.version == 0 || env.version > max_version)
    throw trace::DecodeError(tag + ": unsupported format version " +
                             std::to_string(env.version) + " (max " +
                             std::to_string(max_version) + ")");
  env.config_digest = r.u64();
  if (expect_digest != 0 && env.config_digest != expect_digest)
    throw trace::DecodeError(tag + ": config digest mismatch");
  const std::uint64_t len = r.u64();
  const std::uint64_t sum = r.u64();
  if (len != r.remaining())
    throw trace::DecodeError(tag + ": payload length mismatch");
  env.payload = r.raw(static_cast<std::size_t>(len));
  if (support::fnv1a64(env.payload.data(), env.payload.size()) != sum)
    throw trace::DecodeError(tag + ": checksum mismatch");
  return env;
}

void put_string(trace::ByteWriter& w, std::string_view s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::string get_string(trace::ByteReader& r) {
  const std::uint32_t len = r.u32();
  if (len > r.remaining())
    throw trace::DecodeError("string length exceeds buffer");
  const auto bytes = r.raw(len);
  return {bytes.begin(), bytes.end()};
}

void put_blob(trace::ByteWriter& w, const std::vector<std::uint8_t>& bytes) {
  w.u64(bytes.size());
  w.bytes(bytes.data(), bytes.size());
}

std::vector<std::uint8_t> get_blob(trace::ByteReader& r) {
  const std::uint64_t len = r.u64();
  if (len > r.remaining())
    throw trace::DecodeError("blob length exceeds buffer");
  return r.raw(static_cast<std::size_t>(len));
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_sys("open: " + path);
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_sys("read: " + path);
    }
    if (n == 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  ::close(fd);
  return out;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void write_file_sync(const std::string& path,
                     const std::vector<std::uint8_t>& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_sys("open: " + path);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_sys("write: " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_sys("fsync: " + path);
  }
  ::close(fd);
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  write_file_sync(tmp, bytes);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw_sys("rename: " + tmp + " -> " + path);
  fsync_path(dirname_of(path), O_RDONLY | O_DIRECTORY);
}

void fsync_dir(const std::string& dir) {
  fsync_path(dir, O_RDONLY | O_DIRECTORY);
}

}  // namespace cham::durable
