// ChamDurable checkpoint/restart: epoch snapshots + write-ahead journal.
//
// Directory layout (all artifacts carry the run's config digest):
//   manifest.bin   — sealed RunManifest; written once at create time
//   snapshot.bin   — latest ProtocolSnapshot, published crash-atomically
//   journal.bin    — WAL of RankRecords + EpochDeltas since that snapshot
//
// Commit protocol per epoch E:
//   1. every live rank appends its own RankRecord (buffered write; the
//      owning fiber is the single writer of its record),
//   2. the epoch's closing barrier runs (so records precede the delta in
//      file order),
//   3. the home rank appends the EpochDelta and fsyncs — the commit point.
// Every `snapshot_every` commits the journal is folded into a fresh
// snapshot (tmp + fsync + rename + dir fsync) and a new journal started.
//
// recover() rebuilds the newest committed state: snapshot, then deltas in
// file order (skipping epochs <= snapshot epoch, so a crash between the
// snapshot rename and the journal swap cannot double-apply). A torn final
// frame — the SIGKILL signature — is dropped silently; real corruption is
// a typed trace::DecodeError.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "durable/journal.hpp"
#include "durable/snapshot.hpp"

namespace cham::durable {

inline constexpr std::uint16_t kManifestVersion = 1;

/// Everything needed to re-execute the run deterministically and to refuse
/// artifacts from a differently-configured run. digest() is embedded in
/// every snapshot/journal envelope.
struct RunManifest {
  std::string workload;  ///< e.g. "lu", "mg"
  std::string cls = "S";
  std::int32_t timesteps = 0;
  std::int32_t procs = 0;
  std::uint64_t k = 0;
  std::int32_t call_frequency = 1;
  std::int32_t max_window = 32;
  std::uint8_t policy = 0;
  std::uint64_t seed = 0;
  double degrade_fraction = 0.5;
  bool auto_marker = false;
  std::string fault_plan;  ///< resolved plan text; empty = fault-free
  std::uint64_t fault_seed = 0;
  std::uint64_t sched_seed = 0;
  std::int32_t snapshot_every = 8;

  [[nodiscard]] std::uint64_t digest() const;
};

std::vector<std::uint8_t> encode_manifest(const RunManifest& m);
RunManifest decode_manifest(const std::vector<std::uint8_t>& bytes);

/// Result of recover(): the newest committed protocol state plus replay
/// bookkeeping for diagnostics.
struct RecoveredState {
  RunManifest manifest;
  std::uint64_t epoch = 0;  ///< epochs committed (0 = nothing durable yet)
  bool finalized = false;   ///< the run had already flushed its final trace
  std::vector<std::uint8_t> online_wire;
  std::vector<std::uint8_t> clusters_wire;
  std::array<std::uint64_t, 4> state_counts{};
  std::uint64_t effective_k = 0;
  std::uint64_t num_callpaths = 0;
  std::vector<std::int32_t> gap_ranks;
  std::vector<std::pair<std::uint64_t, std::string>> sites;
  std::vector<RankRecord> ranks;  ///< per-rank state at `epoch`
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t journal_epochs_replayed = 0;
  bool journal_torn_tail = false;
};

/// Load and replay `dir`. Throws trace::DecodeError on corrupt artifacts,
/// std::system_error when the directory/manifest is missing.
RecoveredState recover(const std::string& dir);

struct CheckpointerOptions {
  std::int32_t snapshot_every = 8;  ///< epochs between snapshots (>=1)
  /// Test hook: raise SIGKILL right after committing this epoch (0 = off).
  std::uint64_t kill_after_epoch = 0;
};

/// Journals per-epoch protocol state and periodically folds the journal
/// into an atomic snapshot. Thread/fiber-safe: rank fibers append records
/// concurrently with the home rank's queries, guarded by a real mutex and
/// modelled for ChamRace as an atomic container (like the call-site intern
/// table) so the internal lock contributes no happens-before edges.
class Checkpointer {
 public:
  /// Initialise `dir` (created if missing) for a fresh run: writes the
  /// sealed manifest and an empty journal.
  static std::unique_ptr<Checkpointer> create(const std::string& dir,
                                              const RunManifest& manifest,
                                              CheckpointerOptions opts = {});
  /// Reattach to `dir` after recover(): journal appends continue after
  /// `recovered.epoch` and the rank-record cache is seeded from the
  /// recovery so in-run lead restore keeps working across the resume.
  static std::unique_ptr<Checkpointer> attach(const std::string& dir,
                                              const RecoveredState& recovered,
                                              CheckpointerOptions opts = {});

  /// Called by the owning rank fiber once its epoch work is done, before
  /// the epoch's closing barrier.
  void append_rank_record(const RankRecord& record);

  /// Called by the home rank after the closing barrier: append the delta,
  /// fsync (the commit point), roll a snapshot when due, and fire the
  /// kill_after_epoch test hook. `online_wire` is the post-append online
  /// trace image used if this commit triggers a snapshot.
  void commit_epoch(const EpochDelta& delta,
                    const std::vector<std::uint8_t>& online_wire);

  /// Newest journaled record for `rank` (any epoch), if one exists — the
  /// promoted lead's source for restoring a dead lead's partial trace.
  [[nodiscard]] std::optional<RankRecord> latest_rank_record(
      std::int32_t rank) const;

  [[nodiscard]] const RunManifest& manifest() const;
  [[nodiscard]] std::uint64_t epochs_committed() const;
  [[nodiscard]] std::uint64_t snapshots_written() const;
  [[nodiscard]] std::uint64_t records_appended() const;
  [[nodiscard]] std::uint64_t fsyncs() const;

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;
  ~Checkpointer();

 private:
  Checkpointer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cham::durable
