// Deterministic corruption injector for durable wire images.
//
// Drives the robustness contract of every decode path: given any mutated
// snapshot/journal/trace image, decoding must either succeed or throw a
// typed trace::DecodeError — never crash, hang, or allocate unboundedly.
// Mutations are a pure function of (image, seed), so a failing seed from
// the check.sh corruption matrix reproduces exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cham::durable {

enum class MutationKind : std::uint8_t {
  kTruncate = 0,   ///< drop a suffix
  kBitFlip = 1,    ///< flip 1..8 random bits
  kZeroRun = 2,    ///< zero a random range
  kSplice = 3,     ///< overwrite a range with another range of the image
  kDuplicate = 4,  ///< insert a copy of a range
  kDelete = 5,     ///< remove a range
};

struct MutationReport {
  MutationKind kind = MutationKind::kTruncate;
  std::size_t offset = 0;
  std::size_t length = 0;
  [[nodiscard]] std::string to_string() const;
};

/// Mutate `image` deterministically from `seed`. The result always differs
/// from the input for non-empty images (empty in, empty out). `report`
/// (optional) receives what was done, for failure diagnostics.
std::vector<std::uint8_t> mutate_image(std::vector<std::uint8_t> image,
                                       std::uint64_t seed,
                                       MutationReport* report = nullptr);

}  // namespace cham::durable
