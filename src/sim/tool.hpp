// PMPI tool interface.
//
// A Tool observes every traced MPI call of every rank through pre/post hooks
// and may perform its own (untraced) communication through the rank's Pmpi
// facade — the same powers a PMPI wrapper library has under real MPI.
// Because the engine is single-threaded, one Tool instance serves all ranks;
// per-rank state lives inside the tool, keyed by rank.
#pragma once

#include "sim/types.hpp"

namespace cham::sim {

class Pmpi;

class Tool {
 public:
  virtual ~Tool() = default;

  /// Fired inside MPI_Init, once per rank, before any traced call.
  virtual void on_init(Rank /*rank*/, Pmpi& /*pmpi*/) {}

  /// Fired before/after every traced call, including MPI_Finalize (where
  /// ScalaTrace performs its inter-node merge). `info.op == Op::kFinalize`
  /// identifies the finalize wrapper.
  virtual void on_pre(Rank /*rank*/, const CallInfo& /*info*/,
                      Pmpi& /*pmpi*/) {}
  virtual void on_post(Rank /*rank*/, const CallInfo& /*info*/,
                       Pmpi& /*pmpi*/) {}
};

}  // namespace cham::sim
