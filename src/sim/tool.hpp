// PMPI tool interface.
//
// A Tool observes every traced MPI call of every rank through pre/post hooks
// and may perform its own (untraced) communication through the rank's Pmpi
// facade — the same powers a PMPI wrapper library has under real MPI.
// Because the engine is single-threaded, one Tool instance serves all ranks;
// per-rank state lives inside the tool, keyed by rank.
//
// Tools compose: ToolChain stacks several tools the way PMPI wrapper
// libraries stack on a real MPI, so a correctness verifier can ride along
// with the Chameleon tracer on the same run.
#pragma once

#include <exception>
#include <vector>

#include "sim/types.hpp"

namespace cham::sim {

class Engine;
class Pmpi;

class Tool {
 public:
  virtual ~Tool() = default;

  /// Fired inside MPI_Init, once per rank, before any traced call.
  virtual void on_init(Rank /*rank*/, Pmpi& /*pmpi*/) {}

  /// Fired before/after every traced call, including MPI_Finalize (where
  /// ScalaTrace performs its inter-node merge). `info.op == Op::kFinalize`
  /// identifies the finalize wrapper.
  virtual void on_pre(Rank /*rank*/, const CallInfo& /*info*/,
                      Pmpi& /*pmpi*/) {}
  virtual void on_post(Rank /*rank*/, const CallInfo& /*info*/,
                       Pmpi& /*pmpi*/) {}

  /// Fired outside any fiber when no rank can make progress and the run is
  /// about to be aborted with a DeadlockError. The engine's introspection
  /// API (blocked_state, pending/unexpected queues) describes the stalled
  /// configuration; implementations must only inspect and record — the
  /// engine unwinds all fibers and throws once this returns.
  virtual void on_stall(Engine& /*engine*/) {}
};

/// Dispatches to a stack of tools. Pre-side hooks (on_init, on_pre) run
/// first-to-last; on_post runs last-to-first — the nesting a stack of PMPI
/// interposition layers produces on a real MPI. Does not own the tools.
class ToolChain : public Tool {
 public:
  ToolChain() = default;
  explicit ToolChain(std::vector<Tool*> tools) : tools_(std::move(tools)) {}

  void add(Tool* tool) { tools_.push_back(tool); }
  [[nodiscard]] std::size_t size() const { return tools_.size(); }

  void on_init(Rank rank, Pmpi& pmpi) override {
    for (Tool* tool : tools_) tool->on_init(rank, pmpi);
  }
  void on_pre(Rank rank, const CallInfo& info, Pmpi& pmpi) override {
    for (Tool* tool : tools_) tool->on_pre(rank, info, pmpi);
  }
  void on_post(Rank rank, const CallInfo& info, Pmpi& pmpi) override {
    // A layer that throws (tool bug, or a fiber cancelled by an injected
    // crash inside a tool-side Pmpi call) must not starve the outer layers
    // of their post hook — on a real MPI the stack unwinds through every
    // PMPI wrapper. Finish the chain, then rethrow the first failure.
    std::exception_ptr failure;
    for (auto it = tools_.rbegin(); it != tools_.rend(); ++it) {
      try {
        (*it)->on_post(rank, info, pmpi);
      } catch (...) {
        if (!failure) failure = std::current_exception();
      }
    }
    if (failure) std::rethrow_exception(failure);
  }
  void on_stall(Engine& engine) override {
    for (Tool* tool : tools_) tool->on_stall(engine);
  }

 private:
  std::vector<Tool*> tools_;
};

}  // namespace cham::sim
