// ChamShard: the sharded multi-threaded fiber scheduler.
//
// Rank fibers are partitioned round-robin across a fixed pool of shards
// (rank r lives on shard r % S forever); every shard owns a run queue and a
// worker thread that is the only thread ever executing — or resuming — its
// fibers, so each fiber's stack, ucontext, and ASan bookkeeping stay
// thread-pinned for life. Execution proceeds in virtual-clock epochs
// separated by a pool-wide barrier:
//
//   1. All workers park on the barrier. The last arriver becomes the
//      planner: it merges freshly woken fibers into the shard run queues,
//      computes the minimum virtual time over every ready fiber, and marks
//      the fibers inside the epoch window [t_min, t_min + horizon] eligible
//      (the default horizon is unbounded — every ready fiber joins, the
//      SimGrid/SMPI scheduling-round discipline — because the engine's
//      vtime algebra makes protocol output independent of intra-epoch
//      order; see docs/ENGINE.md).
//   2. The barrier releases; each shard runs its eligible fibers — in rank
//      order, or seeded-shuffled per (seed, shard, epoch) when a scheduler
//      seed is set — exactly once, in parallel with the other shards.
//      Fibers woken mid-epoch become eligible at the next barrier, never
//      the current one, so eligibility is independent of thread timing.
//   3. Repeat until every fiber finished, or nothing is ready: then the
//      planner runs the stall handler (all workers parked, so it sees a
//      fully quiescent engine), and failing that triggers the same
//      cancel-and-unwind deadlock path as the single-threaded scheduler.
//
// Wake-ups racing a block are handled with a per-fiber wake token: an
// unblock() that finds its target running (about to block on the very
// condition the caller just satisfied) sets wake_pending instead of being
// dropped; the target's next block() consumes the token and returns
// immediately. Engine block sites are all condition loops, so the spurious
// return re-checks and either proceeds or blocks for real — the classic
// lost-wakeup is structurally impossible.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/scheduler.hpp"

namespace cham::obs::prof {
class PhaseScope;
}  // namespace cham::obs::prof

namespace cham::sim {

class ShardedScheduler;

namespace detail {

enum class ShardFiberState : std::uint8_t {
  kReady,
  kRunning,
  kBlocked,
  kFinished
};

/// One rank fiber pinned to a shard. `state`, `wake_pending`, and
/// `block_reason` are guarded by the owning shard's mutex; the stack and
/// context are touched only by the owning shard's worker thread.
struct ShardFiber {
  ShardFiber(std::size_t bytes, std::function<void()> fn);
  ~ShardFiber();
  ShardFiber(const ShardFiber&) = delete;
  ShardFiber& operator=(const ShardFiber&) = delete;

  ucontext_t context{};
  std::unique_ptr<char[]> stack;
  std::size_t stack_bytes;
  std::function<void()> entry;
  ShardFiberState state = ShardFiberState::kReady;
  int id = -1;
  int shard = 0;
  bool started = false;
  /// A wake-up arrived while the fiber was off the blocked list; consumed
  /// by its next block() (see the wake-token protocol above).
  bool wake_pending = false;
  ShardedScheduler* sched = nullptr;
  std::string block_reason;
  void* sanitizer_stack = nullptr;
  void* tsan_fiber = nullptr;
  /// Open ChamProf scope chain, parked while the fiber is switched out
  /// (the scopes live on this fiber's stack, which is worker-thread-pinned
  /// for life; see PhaseScope::suspend).
  obs::prof::PhaseScope* phase_top = nullptr;
};

}  // namespace detail

class ShardedScheduler final : public Scheduler {
 public:
  /// A pool of `nthreads` shards/workers (>= 1). The driving thread that
  /// calls run() doubles as shard 0's worker, so nthreads == 1 spawns no
  /// threads at all.
  explicit ShardedScheduler(int nthreads);
  ~ShardedScheduler() override;

  int spawn(std::function<void()> entry, std::size_t stack_bytes) override;
  void run() override;
  void set_stall_handler(std::function<bool()> handler) override {
    stall_handler_ = std::move(handler);
  }
  void set_seed(std::uint64_t seed) override { seed_ = seed; }

  /// Probe mapping a fiber id to its current virtual time; consulted by the
  /// epoch planner to compute the window. Without a probe every fiber
  /// reports t=0 and each epoch runs the full ready set.
  void set_vtime_probe(std::function<double(int)> probe) {
    vtime_probe_ = std::move(probe);
  }

  /// Epoch window width: fibers with vtime <= t_min + horizon run this
  /// epoch. Negative (default) means unbounded — all ready fibers run.
  void set_epoch_horizon(double horizon) { horizon_ = horizon; }

  void yield() override;
  void block(std::string reason) override;
  void unblock(int id) override;
  [[noreturn]] void exit_current() override;
  [[nodiscard]] int current() const override;
  [[nodiscard]] std::size_t fiber_count() const override {
    return fibers_.size();
  }
  [[nodiscard]] std::size_t finished_count() const override;
  [[nodiscard]] bool finished(int id) const override;
  [[nodiscard]] bool blocked(int id) const override;
  [[nodiscard]] std::string block_note(int id) const override;
  [[nodiscard]] std::uint64_t switch_count() const override;

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  /// Barrier rounds executed (diagnostics; tests assert epoch progress).
  [[nodiscard]] std::uint64_t epochs() const;

 private:
  /// Per-shard state. The mutex guards the ready/run lists and every
  /// owned fiber's state/wake/reason fields; the context/stack fields
  /// below it belong exclusively to the shard's worker thread.
  struct Shard {
    std::mutex m;
    std::vector<int> ready;     ///< runnable fiber ids (unordered between epochs)
    std::vector<int> run_list;  ///< this epoch's eligible ids, in run order
    std::uint64_t switches = 0;

    ucontext_t main_context{};
    void* main_sanitizer_stack = nullptr;
    void* main_tsan_fiber = nullptr;
    const void* main_stack_bottom = nullptr;
    std::size_t main_stack_size = 0;
    std::thread worker;  ///< shards 1..S-1; shard 0 runs on the driver
  };

  static void trampoline(unsigned hi, unsigned lo);
  void worker_loop(int shard_index);
  /// Park on the epoch barrier; the last arriver plans the next epoch.
  /// Returns false once the pool is shutting down. The shard index feeds
  /// the per-shard ChamProf barrier-wait/plan counters.
  bool barrier_and_plan(int shard_index);
  /// Runs on the planner with every worker parked: merge wakes, pick the
  /// epoch window, fill the run lists — or handle stall/cancel/done.
  void plan_epoch();
  void run_epoch(int shard_index);
  void dispatch(int shard_index, detail::ShardFiber& fiber);
  void start_cancel();
  [[nodiscard]] double fiber_vtime(int id) const {
    return vtime_probe_ ? vtime_probe_(id) : 0.0;
  }
  [[nodiscard]] std::string deadlock_report();
  void record_exception();

  std::vector<std::unique_ptr<detail::ShardFiber>> fibers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Epoch barrier: generation-counted so workers cannot miss a release.
  mutable std::mutex coord_m_;
  std::condition_variable coord_cv_;
  int coord_waiting_ = 0;
  std::uint64_t coord_gen_ = 0;
  std::uint64_t epochs_ = 0;  ///< guarded by coord_m_
  bool done_ = false;         ///< guarded by coord_m_

  std::atomic<std::size_t> finished_{0};
  /// Set by the planner (all workers parked), read by fibers at block/yield
  /// cancellation points.
  std::atomic<bool> cancelling_{false};

  std::mutex error_m_;
  std::exception_ptr pending_exception_;  ///< first fiber exception wins
  std::string deadlock_message_;

  std::function<bool()> stall_handler_;
  std::function<double(int)> vtime_probe_;
  std::uint64_t seed_ = 0;
  double horizon_ = -1.0;
  bool ran_ = false;
};

}  // namespace cham::sim
