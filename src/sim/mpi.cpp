#include "sim/mpi.hpp"

#include <cstring>

#include "sim/tool.hpp"
#include "support/logging.hpp"

namespace cham::sim {

// ---------------------------------------------------------------------------
// Pmpi (tool traffic, untraced, kCommTool)
// ---------------------------------------------------------------------------

CommResult Pmpi::send_bytes(Rank dest, int tag,
                            std::vector<std::uint8_t> data) const {
  return engine_->pmpi_send(rank_, kCommTool, dest, tag, data.size(),
                            std::move(data));
}

std::vector<std::uint8_t> Pmpi::recv_bytes(Rank src, int tag,
                                           RecvStatus* status) const {
  Message msg = engine_->pmpi_recv(rank_, kCommTool, src, tag, status);
  return std::move(msg.payload);
}

bool Pmpi::try_recv_bytes(Rank src, int tag, std::vector<std::uint8_t>* data,
                          RecvStatus* status) const {
  Message msg;
  if (!engine_->pmpi_try_recv(rank_, kCommTool, src, tag, &msg)) return false;
  if (status != nullptr) {
    status->source = msg.src;
    status->tag = msg.tag;
    status->bytes = msg.bytes;
    status->peer_failed = msg.peer_failed;
  }
  if (data != nullptr) *data = std::move(msg.payload);
  return true;
}

void Pmpi::barrier() const { engine_->pmpi_barrier(rank_, kCommTool); }

std::uint64_t Pmpi::reduce_u64(std::uint64_t value, ReduceOp op,
                               Rank root) const {
  auto out = engine_->pmpi_reduce(rank_, kCommTool, root, op, {value});
  return rank_ == root && !out.empty() ? out[0] : 0;
}

std::uint64_t Pmpi::allreduce_u64(std::uint64_t value, ReduceOp op) const {
  auto out = engine_->pmpi_allreduce(rank_, kCommTool, op, {value});
  CHAM_CHECK(!out.empty());
  return out[0];
}

std::uint64_t Pmpi::bcast_u64(std::uint64_t value, Rank root) const {
  std::vector<std::uint8_t> blob(sizeof value);
  std::memcpy(blob.data(), &value, sizeof value);
  auto out = engine_->pmpi_bcast(rank_, kCommTool, root, std::move(blob),
                                 sizeof value);
  if (out.size() != sizeof value) {
    // Only possible when the root died before depositing: survivors get an
    // empty payload and must treat the broadcast as lost.
    CHAM_CHECK(engine_->fault_injection_enabled());
    return 0;
  }
  std::uint64_t result = 0;
  std::memcpy(&result, out.data(), sizeof result);
  return result;
}

std::vector<std::uint8_t> Pmpi::bcast_bytes(std::vector<std::uint8_t> data,
                                            Rank root) const {
  return engine_->pmpi_bcast(rank_, kCommTool, root, std::move(data), 0);
}

std::vector<std::vector<std::uint8_t>> Pmpi::gather_bytes(
    std::vector<std::uint8_t> data, Rank root) const {
  return engine_->pmpi_gather(rank_, kCommTool, root, std::move(data));
}

// ---------------------------------------------------------------------------
// Mpi (application traffic, traced, kCommWorld / kCommMarker)
// ---------------------------------------------------------------------------

namespace {
CallInfo make_info(Op op, Rank peer, int tag, std::size_t bytes, int comm,
                   Rank root = 0, bool marker = false) {
  CallInfo info;
  info.op = op;
  info.peer = peer;
  info.tag = tag;
  info.bytes = bytes;
  info.comm = comm;
  info.root = root;
  info.is_marker = marker;
  return info;
}
}  // namespace

void Mpi::init() {
  engine_->tool_pre(rank_, make_info(Op::kInit, kAnySource, kAnyTag, 0,
                                     kCommWorld));
  if (engine_->tool() != nullptr)
    engine_->tool()->on_init(rank_, engine_->pmpi(rank_));
  engine_->tool_post(rank_, make_info(Op::kInit, kAnySource, kAnyTag, 0,
                                      kCommWorld));
}

void Mpi::finalize() {
  const CallInfo info =
      make_info(Op::kFinalize, kAnySource, kAnyTag, 0, kCommWorld);
  engine_->tool_pre(rank_, info);
  engine_->tool_post(rank_, info);
  // MPI_Finalize is collective: no rank completes before every rank (and
  // any tool work riding on finalize, e.g. ScalaTrace's radix-tree merge)
  // is done. This is what spreads the merge chain's latency across all P
  // ranks' wall clocks, exactly as on a real cluster.
  engine_->pmpi_barrier(rank_, kCommTool);
}

CommResult Mpi::send(Rank dest, std::size_t bytes, int tag,
                     std::vector<std::uint8_t> payload, bool absolute_peer) {
  CallInfo info = make_info(Op::kSend, dest, tag, bytes, kCommWorld);
  info.absolute_peer = absolute_peer;
  engine_->tool_pre(rank_, info);
  const CommResult result =
      engine_->pmpi_send(rank_, kCommWorld, dest, tag, bytes,
                         std::move(payload));
  engine_->tool_post(rank_, info);
  return result;
}

RecvStatus Mpi::recv(Rank src, std::size_t bytes, int tag,
                     std::vector<std::uint8_t>* payload, bool absolute_peer) {
  CallInfo info = make_info(Op::kRecv, src, tag, bytes, kCommWorld);
  info.absolute_peer = absolute_peer;
  engine_->tool_pre(rank_, info);
  RecvStatus status;
  Message msg = engine_->pmpi_recv(rank_, kCommWorld, src, tag, &status);
  if (payload != nullptr) *payload = std::move(msg.payload);
  info.matched_peer = status.source;
  info.matched_bytes = status.bytes;
  engine_->tool_post(rank_, info);
  return status;
}

void Mpi::remember_posted(Request req, const PostedRecv& rec) {
  if (posted_.size() <= static_cast<std::size_t>(req))
    posted_.resize(static_cast<std::size_t>(req) + 1);
  posted_[static_cast<std::size_t>(req)] = rec;
}

Mpi::PostedRecv Mpi::posted_of(Request req) const {
  CHAM_CHECK(req >= 0 && static_cast<std::size_t>(req) < posted_.size());
  return posted_[static_cast<std::size_t>(req)];
}

Request Mpi::isend(Rank dest, std::size_t bytes, int tag,
                   std::vector<std::uint8_t> payload, bool absolute_peer) {
  CallInfo info = make_info(Op::kIsend, dest, tag, bytes, kCommWorld);
  info.absolute_peer = absolute_peer;
  engine_->tool_pre(rank_, info);
  const Request req =
      engine_->pmpi_isend(rank_, kCommWorld, dest, tag, bytes,
                          std::move(payload));
  remember_posted(req, PostedRecv{dest, tag, bytes});
  engine_->tool_post(rank_, info);
  return req;
}

Request Mpi::irecv(Rank src, std::size_t bytes, int tag, bool absolute_peer) {
  CallInfo info = make_info(Op::kIrecv, src, tag, bytes, kCommWorld);
  info.absolute_peer = absolute_peer;
  engine_->tool_pre(rank_, info);
  const Request req = engine_->pmpi_irecv(rank_, kCommWorld, src, tag, bytes);
  remember_posted(req, PostedRecv{src, tag, bytes});
  engine_->tool_post(rank_, info);
  return req;
}

RecvStatus Mpi::wait(Request req) {
  const PostedRecv posted = posted_of(req);
  CallInfo info =
      make_info(Op::kWait, posted.src, posted.tag, posted.bytes, kCommWorld);
  engine_->tool_pre(rank_, info);
  RecvStatus status;
  engine_->pmpi_wait(rank_, req, &status);
  info.matched_peer = status.source;
  info.matched_bytes = status.bytes;
  engine_->tool_post(rank_, info);
  return status;
}

void Mpi::waitall(std::span<Request> reqs) {
  // Traced as one MPI_Waitall event (ScalaTrace records the call, not each
  // internal completion).
  CallInfo info = make_info(Op::kWaitall, kAnySource, kAnyTag, 0, kCommWorld);
  engine_->tool_pre(rank_, info);
  for (Request req : reqs) engine_->pmpi_wait(rank_, req, nullptr);
  engine_->tool_post(rank_, info);
}

void Mpi::barrier() {
  const CallInfo info =
      make_info(Op::kBarrier, kAnySource, kAnyTag, 0, kCommWorld);
  engine_->tool_pre(rank_, info);
  engine_->pmpi_barrier(rank_, kCommWorld);
  engine_->tool_post(rank_, info);
}

void Mpi::marker() {
  const CallInfo info = make_info(Op::kBarrier, kAnySource, kAnyTag, 0,
                                  kCommMarker, 0, /*marker=*/true);
  engine_->tool_pre(rank_, info);
  engine_->pmpi_barrier(rank_, kCommMarker);
  engine_->tool_post(rank_, info);
}

void Mpi::bcast(std::size_t bytes, Rank root) {
  const CallInfo info =
      make_info(Op::kBcast, kAnySource, kAnyTag, bytes, kCommWorld, root);
  engine_->tool_pre(rank_, info);
  engine_->pmpi_bcast(rank_, kCommWorld, root, {}, bytes);
  engine_->tool_post(rank_, info);
}

void Mpi::reduce(std::size_t bytes, Rank root) {
  const CallInfo info =
      make_info(Op::kReduce, kAnySource, kAnyTag, bytes, kCommWorld, root);
  engine_->tool_pre(rank_, info);
  // Timing-only reduction: no payload, only the declared size.
  engine_->pmpi_reduce(rank_, kCommWorld, root, ReduceOp::kSum, {}, bytes);
  engine_->tool_post(rank_, info);
}

void Mpi::allreduce(std::size_t bytes) {
  const CallInfo info =
      make_info(Op::kAllreduce, kAnySource, kAnyTag, bytes, kCommWorld);
  engine_->tool_pre(rank_, info);
  engine_->pmpi_allreduce(rank_, kCommWorld, ReduceOp::kSum, {}, bytes);
  engine_->tool_post(rank_, info);
}

void Mpi::gather(std::size_t bytes, Rank root) {
  const CallInfo info =
      make_info(Op::kGather, kAnySource, kAnyTag, bytes, kCommWorld, root);
  engine_->tool_pre(rank_, info);
  engine_->pmpi_gather(rank_, kCommWorld, root, {}, bytes);
  engine_->tool_post(rank_, info);
}

void Mpi::scatter(std::size_t bytes, Rank root) {
  const CallInfo info =
      make_info(Op::kScatter, kAnySource, kAnyTag, bytes, kCommWorld, root);
  engine_->tool_pre(rank_, info);
  std::vector<std::vector<std::uint8_t>> blobs;
  if (rank_ == root) {
    blobs.assign(static_cast<std::size_t>(size()), {});
  }
  engine_->pmpi_scatter(rank_, kCommWorld, root, std::move(blobs), bytes);
  engine_->tool_post(rank_, info);
}

void Mpi::allgather(std::size_t bytes) {
  const CallInfo info =
      make_info(Op::kAllgather, kAnySource, kAnyTag, bytes, kCommWorld);
  engine_->tool_pre(rank_, info);
  engine_->pmpi_allgather(rank_, kCommWorld, {}, bytes);
  engine_->tool_post(rank_, info);
}

void Mpi::alltoall(std::size_t bytes) {
  const CallInfo info =
      make_info(Op::kAlltoall, kAnySource, kAnyTag, bytes, kCommWorld);
  engine_->tool_pre(rank_, info);
  engine_->pmpi_alltoall(rank_, kCommWorld, bytes);
  engine_->tool_post(rank_, info);
}

void Mpi::compute(double seconds) {
  // Compute regions are not MPI calls; no hooks fire, only the clock moves.
  engine_->advance_compute(rank_, seconds);
}

}  // namespace cham::sim
