#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/race/annotate.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/timeline.hpp"
#include "sim/fault.hpp"
#include "sim/fiber.hpp"
#include "sim/mpi.hpp"
#include "sim/shard.hpp"
#include "sim/tool.hpp"
#include "support/logging.hpp"

namespace cham::sim {

namespace prof = obs::prof;

Engine::Engine(EngineOptions opts) : opts_(opts) {
  CHAM_CHECK_MSG(opts_.nprocs >= 1, "need at least one rank");
  const auto p = static_cast<std::size_t>(opts_.nprocs);
  vtime_.assign(p, 0.0);
  wait_.assign(p, 0.0);
  blocked_.assign(p, BlockedState{});
  unexpected_.resize(kNumComms * p);
  pending_.resize(kNumComms * p);
  requests_.resize(p);
  inbox_.resize(p);
  coll_seq_.assign(kNumComms * p, 0);
  mbox_m_ = std::make_unique<std::mutex[]>(kNumComms * p);
  inbox_m_ = std::make_unique<std::mutex[]>(p);
  failed_ = std::make_unique<std::atomic<bool>[]>(p);
  for (std::size_t i = 0; i < p; ++i)
    failed_[i].store(false, std::memory_order_relaxed);
  call_count_.assign(p, 0);
  marker_count_.assign(p, 0);
  toolop_count_.assign(p, 0);
}

Engine::~Engine() = default;

double Engine::vtime(Rank r) const {
  return vtime_.at(static_cast<std::size_t>(r));
}

double Engine::max_vtime() const {
  return *std::max_element(vtime_.begin(), vtime_.end());
}

double Engine::vtime_sum() const {
  double total = 0;
  for (double t : vtime_) total += t;
  return total;
}

double Engine::wait_seconds(Rank r) const {
  return wait_.at(static_cast<std::size_t>(r));
}

Pmpi& Engine::pmpi(Rank r) { return pmpis_.at(static_cast<std::size_t>(r)); }

namespace {
/// Removes the rank context from the logger even when run() unwinds via a
/// deadlock or tool exception — the scheduler it points at dies with run().
struct LogRankProviderGuard {
  ~LogRankProviderGuard() { support::set_log_rank_provider(nullptr); }
};
}  // namespace

void Engine::run(const std::function<void(Mpi&)>& rank_main) {
  CHAM_CHECK_MSG(!ran_, "Engine::run may be called once");
  ran_ = true;
  // More shards than ranks would only add idle workers; clamp. threads == 1
  // keeps the classic single-threaded scheduler so existing runs stay
  // byte-for-byte identical.
  const int nshards = std::min(std::max(opts_.threads, 1), opts_.nprocs);
  if (nshards > 1) {
    auto sharded = std::make_unique<ShardedScheduler>(nshards);
    // The planner runs with every worker parked on the epoch barrier, so
    // its cross-rank vtime reads are ordered after all fiber writes.
    sharded->set_vtime_probe(
        [this](int id) { return vtime_[static_cast<std::size_t>(id)]; });
    sharded->set_epoch_horizon(opts_.epoch_horizon);
    scheduler_ = std::move(sharded);
  } else {
    scheduler_ = std::make_unique<FiberScheduler>();
  }
  if (opts_.sched_seed != 0) scheduler_->set_seed(opts_.sched_seed);
  if (obs::Timeline* tl = obs::timeline()) {
    // Shard worker tracks (s >= 1) are named by ShardedScheduler::run()
    // itself, so every scheduler consumer gets readable Perfetto rows.
    tl->set_track_name(obs::Timeline::kSchedulerTid, "scheduler");
    for (Rank r = 0; r < opts_.nprocs; ++r)
      tl->set_track_name(obs::Timeline::rank_tid(r),
                         "rank " + std::to_string(r));
  }
  support::set_log_rank_provider(
      [sched = scheduler_.get()] { return sched->current(); });
  LogRankProviderGuard log_guard;
  mpis_.reserve(static_cast<std::size_t>(opts_.nprocs));
  pmpis_.reserve(static_cast<std::size_t>(opts_.nprocs));
  for (Rank r = 0; r < opts_.nprocs; ++r) {
    mpis_.emplace_back(Mpi(*this, r));
    pmpis_.emplace_back(Pmpi(*this, r));
  }
  for (Rank r = 0; r < opts_.nprocs; ++r) {
    scheduler_->spawn(
        [this, r, &rank_main] {
          Mpi& mpi = mpis_[static_cast<std::size_t>(r)];
          mpi.init();
          rank_main(mpi);
          mpi.finalize();
        },
        opts_.stack_bytes);
  }
  scheduler_->set_stall_handler([this] {
    if (failed_count_ > 0 && fault_progress_step()) return true;
    if (approximate_ && approximate_progress_step()) return true;
    // Last chance for analysis tools to inspect the stalled configuration
    // (wait-for graph, queue contents) before the scheduler unwinds all
    // fibers and throws DeadlockError.
    if (tool_ != nullptr) tool_->on_stall(*this);
    return false;
  });
  scheduler_->run();
}

// --------------------------------------------------------------------------
// Point-to-point
// --------------------------------------------------------------------------

Engine::RequestState& Engine::request_state(Rank self, Request req) {
  auto& slots = requests_[static_cast<std::size_t>(self)];
  CHAM_CHECK(req >= 0 && req < static_cast<int>(slots.size()));
  return slots[static_cast<std::size_t>(req)];
}

Request Engine::alloc_request(Rank self) {
  auto& slots = requests_[static_cast<std::size_t>(self)];
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].active) {
      slots[i] = RequestState{};
      slots[i].active = true;
      return static_cast<Request>(i);
    }
  }
  slots.emplace_back();
  slots.back().active = true;
  return static_cast<Request>(slots.size() - 1);
}

void Engine::deliver(Rank dest, Request req, Message&& msg) {
  // The sender (or the scheduler's progress step) must not touch dest's
  // request slots: dest could be mid-alloc_request on another communicator,
  // and requests_[dest] reallocating under a concurrent writer is exactly
  // the race the sharded engine would hit. Park the completion in dest's
  // inbox instead; dest drains it from pmpi_wait.
  {
    const prof::TimedLockGuard inbox_lock(inbox_m_[static_cast<std::size_t>(dest)], prof::LockClass::kInbox);
    race::ScopedSync lock("engine.inbox", static_cast<std::uint64_t>(dest));
    RACE_WRITE("engine.inbox", static_cast<std::uint64_t>(dest), 0);
    inbox_[static_cast<std::size_t>(dest)].emplace_back(req, std::move(msg));
  }
  // Wake after releasing the inbox lock: unblock takes dest's shard mutex,
  // and the message is already published, so the wake cannot be lost.
  scheduler_->unblock(dest);
}

void Engine::drain_inbox(Rank self) {
  const auto s = static_cast<std::size_t>(self);
  const prof::TimedLockGuard inbox_lock(inbox_m_[s], prof::LockClass::kInbox);
  race::ScopedSync lock("engine.inbox", static_cast<std::uint64_t>(self));
  RACE_WRITE("engine.inbox", static_cast<std::uint64_t>(self), 0);
  auto& box = inbox_[s];
  while (!box.empty()) {
    auto [req, msg] = std::move(box.front());
    box.pop_front();
    RACE_WRITE("engine.requests", static_cast<std::uint64_t>(self), 0);
    RequestState& state = request_state(self, req);
    state.msg = std::move(msg);
    state.complete = true;
  }
}

CommResult Engine::pmpi_send(Rank self, int comm, Rank dest, int tag,
                             std::size_t bytes,
                             std::vector<std::uint8_t> payload) {
  CHAM_CHECK_MSG(dest >= 0 && dest < opts_.nprocs, "send to invalid rank");
  if (injector_ != nullptr && comm == kCommTool) tool_op_fault_point(self);
  auto& t = vtime_[static_cast<std::size_t>(self)];
  RACE_WRITE("engine.vtime", static_cast<std::uint64_t>(self), 0);
  t += opts_.net.send_overhead;
  RACE_ATOMIC("engine.failed", static_cast<std::uint64_t>(dest), 0);
  if (injector_ != nullptr &&
      failed_[static_cast<std::size_t>(dest)].load(std::memory_order_acquire)) {
    // Detected only after exhausting the full acknowledgement-retry budget.
    t += opts_.ft.recv_fail_delay();
    RACE_ATOMIC("engine.counter.messages_lost", 0, 0);
    messages_lost_.fetch_add(1, std::memory_order_relaxed);
    return CommResult::kPeerFailed;
  }
  Message msg;
  msg.src = self;
  msg.tag = tag;
  msg.bytes = std::max(bytes, payload.size());
  msg.payload = std::move(payload);
  if (injector_ != nullptr) {
    int attempt = 0;
    while (injector_->drop_message(self, dest)) {
      // Each dropped attempt costs a full transfer plus one timeout window.
      RACE_ATOMIC("engine.counter.retransmissions", 0, 0);
      retransmissions_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Timeline* tl = obs::timeline())
        tl->instant(obs::Timeline::rank_tid(self), "fault.drop", "fault",
                    {obs::arg_int("dest", dest)});
      t += opts_.net.p2p_transfer(msg.bytes) + opts_.ft.recv_timeout;
      if (++attempt > opts_.ft.retries) {
        messages_lost_.fetch_add(1, std::memory_order_relaxed);
        return CommResult::kLost;
      }
    }
  }
  msg.arrive_vtime = t + opts_.net.p2p_transfer(msg.bytes);
  RACE_ATOMIC("engine.counter.messages_sent", 0, 0);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(msg.bytes, std::memory_order_relaxed);

  // Mailbox critical section: the posted-receive and unexpected queues of
  // (comm, dest) are written by every sender and by dest itself.
  const prof::TimedLockGuard mbox_lock(mbox_m_[box(comm, dest)], prof::LockClass::kMailbox);
  race::ScopedSync mbox("engine.mailbox", static_cast<std::uint64_t>(comm),
                        static_cast<std::uint64_t>(dest));
  RACE_WRITE("engine.queues", static_cast<std::uint64_t>(comm),
             static_cast<std::uint64_t>(dest));
  auto& posted = pending_[box(comm, dest)];
  for (auto it = posted.begin(); it != posted.end(); ++it) {
    if (matches(*it, msg)) {
      const Request req = it->req;
      posted.erase(it);
      deliver(dest, req, std::move(msg));
      return CommResult::kOk;
    }
  }
  unexpected_[box(comm, dest)].push_back(std::move(msg));
  return CommResult::kOk;
}

Request Engine::pmpi_isend(Rank self, int comm, Rank dest, int tag,
                           std::size_t bytes,
                           std::vector<std::uint8_t> payload) {
  // Eager/buffered semantics: the transfer is initiated immediately and the
  // request completes at once (the paper's workloads never rely on
  // rendezvous back-pressure).
  pmpi_send(self, comm, dest, tag, bytes, std::move(payload));
  RACE_WRITE("engine.requests", static_cast<std::uint64_t>(self), 0);
  const Request req = alloc_request(self);
  RequestState& state = request_state(self, req);
  state.is_recv = false;
  state.complete = true;
  state.comm = comm;
  return req;
}

Request Engine::pmpi_irecv(Rank self, int comm, Rank src, int tag,
                           std::size_t declared_bytes) {
  CHAM_CHECK_MSG(src == kAnySource || (src >= 0 && src < opts_.nprocs),
                 "recv from invalid rank");
  if (injector_ != nullptr && comm == kCommTool) tool_op_fault_point(self);
  RACE_WRITE("engine.requests", static_cast<std::uint64_t>(self), 0);
  const Request req = alloc_request(self);
  RequestState& state = request_state(self, req);
  state.is_recv = true;
  state.comm = comm;
  state.declared_bytes = declared_bytes;
  state.src_match = src;
  state.tag_match = tag;

  const prof::TimedLockGuard mbox_lock(mbox_m_[box(comm, self)], prof::LockClass::kMailbox);
  race::ScopedSync mbox("engine.mailbox", static_cast<std::uint64_t>(comm),
                        static_cast<std::uint64_t>(self));
  RACE_WRITE("engine.queues", static_cast<std::uint64_t>(comm),
             static_cast<std::uint64_t>(self));
  auto& backlog = unexpected_[box(comm, self)];
  PendingRecv want{src, tag, req};
  for (auto it = backlog.begin(); it != backlog.end(); ++it) {
    if (matches(want, *it)) {
      Message msg = std::move(*it);
      backlog.erase(it);
      state.msg = std::move(msg);
      state.complete = true;
      return req;
    }
  }
  pending_[box(comm, self)].push_back(want);
  return req;
}

Message Engine::pmpi_wait(Rank self, Request req, RecvStatus* status) {
  drain_inbox(self);
  RequestState& state = request_state(self, req);
  CHAM_CHECK_MSG(state.active, "wait on inactive request");
  if (!state.complete) {
    auto& blocked = blocked_[static_cast<std::size_t>(self)];
    blocked.kind = BlockedState::Kind::kRecv;
    blocked.comm = state.comm;
    blocked.src_match = state.src_match;
    blocked.tag_match = state.tag_match;
    while (!state.complete) {
      std::ostringstream why;
      why << "MPI_Wait(request=" << req << ")";
      scheduler_->block(why.str());
      drain_inbox(self);
    }
    blocked = BlockedState{};
  }
  RACE_WRITE("engine.requests", static_cast<std::uint64_t>(self), 0);
  Message msg = std::move(state.msg);
  auto& t = vtime_[static_cast<std::size_t>(self)];
  RACE_WRITE("engine.vtime", static_cast<std::uint64_t>(self), 0);
  if (state.is_recv) {
    if (msg.arrive_vtime > t)
      wait_[static_cast<std::size_t>(self)] += msg.arrive_vtime - t;
    t = std::max(t, msg.arrive_vtime) + opts_.net.recv_overhead;
    if (status != nullptr) {
      status->source = msg.src;
      status->tag = msg.tag;
      status->bytes = msg.bytes;
      status->peer_failed = msg.peer_failed;
    }
  }
  state.active = false;
  return msg;
}

Message Engine::pmpi_recv(Rank self, int comm, Rank src, int tag,
                          RecvStatus* status) {
  const Request req = pmpi_irecv(self, comm, src, tag, 0);
  return pmpi_wait(self, req, status);
}

bool Engine::pmpi_try_recv(Rank self, int comm, Rank src, int tag,
                           Message* out) {
  const prof::TimedLockGuard mbox_lock(mbox_m_[box(comm, self)], prof::LockClass::kMailbox);
  race::ScopedSync mbox("engine.mailbox", static_cast<std::uint64_t>(comm),
                        static_cast<std::uint64_t>(self));
  RACE_WRITE("engine.queues", static_cast<std::uint64_t>(comm),
             static_cast<std::uint64_t>(self));
  auto& backlog = unexpected_[box(comm, self)];
  const PendingRecv want{src, tag, kNullRequest};
  for (auto it = backlog.begin(); it != backlog.end(); ++it) {
    if (!matches(want, *it)) continue;
    Message msg = std::move(*it);
    backlog.erase(it);
    auto& t = vtime_[static_cast<std::size_t>(self)];
    if (msg.arrive_vtime > t)
      wait_[static_cast<std::size_t>(self)] += msg.arrive_vtime - t;
    t = std::max(t, msg.arrive_vtime) + opts_.net.recv_overhead;
    if (out != nullptr) *out = std::move(msg);
    return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Collectives
// --------------------------------------------------------------------------

void Engine::collective_arrive(
    Rank self, int comm, Op op,
    const std::function<void(CollSite&)>& deposit,
    const std::function<void(CollSite&)>& finish,
    const std::function<void(CollSite&)>& extract) {
  auto& seq = coll_seq_[box(comm, self)];
  const auto key = std::make_pair(comm, seq);
  ++seq;

  const auto ucomm = static_cast<std::uint64_t>(comm);
  const std::uint64_t slot = key.second;
  CollSite* site = nullptr;
  {
    // The site table itself (insertion/erasure) is one lock per comm; the
    // per-site state a finer lock per (comm, slot). Map nodes are stable,
    // so the pointer stays valid until the last extractor erases it below.
    const prof::TimedLockGuard map_lock(collmap_m_, prof::LockClass::kCollMap);
    race::ScopedSync maplock("engine.collmap", ucomm, 0);
    RACE_WRITE("engine.collmap", ucomm, 0);
    auto [it, inserted] = coll_sites_.try_emplace(key);
    site = &it->second;
    if (inserted) {
      site->op = op;
      site->byte_contribs.resize(static_cast<std::size_t>(opts_.nprocs));
      site->u64_contribs.resize(static_cast<std::size_t>(opts_.nprocs));
    }
  }
  bool completer = false;
  {
    const prof::TimedLockGuard site_lock(site->m, prof::LockClass::kCollSite);
    race::ScopedSync sitelock("engine.collsite", ucomm, slot);
    RACE_WRITE("engine.collsite", ucomm, slot);
    CHAM_CHECK_MSG(site->op == op,
                   "collective mismatch: ranks disagree on the operation");
    deposit(*site);
    const double own = vtime_[static_cast<std::size_t>(self)];
    site->max_arrive = std::max(site->max_arrive, own);
    ++site->arrived;

    // With fault injection dead ranks are routed around: the rendezvous
    // completes once every *live* rank arrived (a crashed rank is never
    // inside a collective, so all arrivals are live). Without an injector
    // the condition reduces to the original arrived == nprocs.
    const int need = injector_ == nullptr ? opts_.nprocs : live_expected();
    if (site->arrived >= need) {
      completer = true;
      site->expected = site->arrived;
      site->complete_vtime =
          site->max_arrive + opts_.net.collective(site->arrived, site->bytes);
      if (site->arrived < opts_.nprocs)
        site->complete_vtime += opts_.ft.recv_fail_delay();
      finish(*site);
      // Store-release AFTER finish: a waiter that observes done == true is
      // guaranteed to see the folded results when it re-locks the site.
      RACE_ATOMIC("engine.collsite.done", ucomm, slot);
      site->done.store(true, std::memory_order_release);
      // Application-level statistic: tool-comm collectives (clustering
      // votes, the finalize synchronization) are bookkeeping, not workload
      // traffic.
      if (comm != kCommTool) {
        RACE_ATOMIC("engine.counter.collectives", 0, 0);
        collectives_run_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  const double own_arrive = vtime_[static_cast<std::size_t>(self)];
  if (completer) {
    // Epoch boundary: completion of a marker-communicator collective is the
    // protocol's global synchronization point.
    if (comm == kCommMarker) race::epoch();
    for (Rank r = 0; r < opts_.nprocs; ++r)
      if (r != self) scheduler_->unblock(r);
  } else {
    auto& blocked = blocked_[static_cast<std::size_t>(self)];
    blocked.kind = BlockedState::Kind::kCollective;
    blocked.comm = comm;
    blocked.op = op;
    blocked.slot = slot;
    RACE_ATOMIC("engine.collsite.done", ucomm, slot);
    while (!site->done.load(std::memory_order_acquire)) {
      int arrived_now = 0;
      {
        // Snapshot under the site lock: other participants keep arriving
        // while we compose the block note.
        const prof::TimedLockGuard site_lock(site->m, prof::LockClass::kCollSite);
        arrived_now = site->arrived;
      }
      std::ostringstream why;
      why << op_name(op) << " comm=" << comm << " slot=" << slot << " ("
          << arrived_now << '/' << opts_.nprocs << " arrived)";
      scheduler_->block(why.str());
      RACE_ATOMIC("engine.collsite.done", ucomm, slot);
    }
    blocked = BlockedState{};
  }
  bool destroy = false;
  {
    // Re-entering the site lock joins every participant's deposit and the
    // completer's finish — the full-barrier happens-before edge.
    const prof::TimedLockGuard site_lock(site->m, prof::LockClass::kCollSite);
    race::ScopedSync sitelock("engine.collsite", ucomm, slot);
    RACE_READ("engine.collsite", ucomm, slot);
    if (site->max_arrive > own_arrive)
      wait_[static_cast<std::size_t>(self)] += site->max_arrive - own_arrive;
    RACE_WRITE("engine.vtime", static_cast<std::uint64_t>(self), 0);
    vtime_[static_cast<std::size_t>(self)] = site->complete_vtime;
    extract(*site);
    destroy = ++site->extracted == site->expected;
  }
  if (destroy) {
    const prof::TimedLockGuard map_lock(collmap_m_, prof::LockClass::kCollMap);
    race::ScopedSync maplock("engine.collmap", ucomm, 0);
    RACE_WRITE("engine.collmap", ucomm, 0);
    coll_sites_.erase(key);
  }
}

void Engine::pmpi_barrier(Rank self, int comm) {
  collective_arrive(
      self, comm, Op::kBarrier, [](CollSite&) {}, [](CollSite&) {},
      [](CollSite&) {});
}

std::vector<std::uint8_t> Engine::pmpi_bcast(Rank self, int comm, Rank root,
                                             std::vector<std::uint8_t> contrib,
                                             std::size_t declared_bytes) {
  const bool is_root = self == root;
  std::vector<std::uint8_t> result;
  collective_arrive(
      self, comm, Op::kBcast,
      [&](CollSite& s) {
        s.root = root;
        s.bytes = std::max({s.bytes, declared_bytes, contrib.size()});
        if (is_root) s.bcast_result = std::move(contrib);
      },
      [](CollSite&) {},
      [&](CollSite& s) { result = s.bcast_result; });
  return result;
}

namespace {
void apply_reduce(ReduceOp op, std::vector<std::uint64_t>& acc,
                  const std::vector<std::uint64_t>& in) {
  if (acc.size() < in.size()) acc.resize(in.size(), 0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] += in[i]; break;
      case ReduceOp::kMax: acc[i] = std::max(acc[i], in[i]); break;
      case ReduceOp::kMin: acc[i] = std::min(acc[i], in[i]); break;
      case ReduceOp::kBor: acc[i] |= in[i]; break;
    }
  }
}
}  // namespace

namespace {
void fold_u64_contribs(Engine::CollSite& s) {
  bool first = true;
  for (const auto& c : s.u64_contribs) {
    if (first) {
      s.reduce_result = c;
      first = false;
    } else {
      apply_reduce(s.rop, s.reduce_result, c);
    }
  }
}
}  // namespace

std::vector<std::uint64_t> Engine::pmpi_reduce(
    Rank self, int comm, Rank root, ReduceOp op,
    std::vector<std::uint64_t> contrib, std::size_t declared_bytes) {
  std::vector<std::uint64_t> result;
  collective_arrive(
      self, comm, Op::kReduce,
      [&](CollSite& s) {
        s.root = root;
        s.rop = op;
        s.bytes = std::max({s.bytes, declared_bytes,
                            contrib.size() * sizeof(std::uint64_t)});
        s.u64_contribs[static_cast<std::size_t>(self)] = std::move(contrib);
      },
      fold_u64_contribs,
      [&](CollSite& s) {
        if (self == s.root) result = s.reduce_result;
      });
  return result;
}

std::vector<std::uint64_t> Engine::pmpi_allreduce(
    Rank self, int comm, ReduceOp op, std::vector<std::uint64_t> contrib,
    std::size_t declared_bytes) {
  std::vector<std::uint64_t> result;
  collective_arrive(
      self, comm, Op::kAllreduce,
      [&](CollSite& s) {
        s.rop = op;
        s.bytes = std::max({s.bytes, declared_bytes,
                            contrib.size() * sizeof(std::uint64_t)});
        s.u64_contribs[static_cast<std::size_t>(self)] = std::move(contrib);
      },
      fold_u64_contribs, [&](CollSite& s) { result = s.reduce_result; });
  return result;
}

std::vector<std::vector<std::uint8_t>> Engine::pmpi_gather(
    Rank self, int comm, Rank root, std::vector<std::uint8_t> contrib,
    std::size_t declared_bytes) {
  std::vector<std::vector<std::uint8_t>> result;
  collective_arrive(
      self, comm, Op::kGather,
      [&](CollSite& s) {
        s.root = root;
        s.bytes = std::max({s.bytes, declared_bytes, contrib.size()});
        s.byte_contribs[static_cast<std::size_t>(self)] = std::move(contrib);
      },
      [](CollSite&) {},
      [&](CollSite& s) {
        if (self == s.root) result = s.byte_contribs;
      });
  return result;
}

std::vector<std::vector<std::uint8_t>> Engine::pmpi_allgather(
    Rank self, int comm, std::vector<std::uint8_t> contrib,
    std::size_t declared_bytes) {
  std::vector<std::vector<std::uint8_t>> result;
  collective_arrive(
      self, comm, Op::kAllgather,
      [&](CollSite& s) {
        s.bytes = std::max({s.bytes, declared_bytes, contrib.size()});
        s.byte_contribs[static_cast<std::size_t>(self)] = std::move(contrib);
      },
      [](CollSite&) {}, [&](CollSite& s) { result = s.byte_contribs; });
  return result;
}

std::vector<std::uint8_t> Engine::pmpi_scatter(
    Rank self, int comm, Rank root,
    std::vector<std::vector<std::uint8_t>> contrib,
    std::size_t declared_bytes) {
  const bool is_root = self == root;
  if (is_root) {
    CHAM_CHECK_MSG(contrib.size() == static_cast<std::size_t>(opts_.nprocs),
                   "scatter root must supply one blob per rank");
  }
  std::vector<std::uint8_t> result;
  collective_arrive(
      self, comm, Op::kScatter,
      [&](CollSite& s) {
        s.root = root;
        s.bytes = std::max(s.bytes, declared_bytes);
        if (is_root) {
          for (const auto& piece : contrib)
            s.bytes = std::max(s.bytes, piece.size());
          s.byte_contribs = std::move(contrib);
        }
      },
      [](CollSite&) {},
      [&](CollSite& s) {
        result = s.byte_contribs[static_cast<std::size_t>(self)];
      });
  return result;
}

void Engine::pmpi_alltoall(Rank self, int comm, std::size_t bytes) {
  collective_arrive(
      self, comm, Op::kAlltoall,
      [&](CollSite& s) {
        // All-to-all moves P messages per rank; charge the aggregate.
        s.bytes = std::max(
            s.bytes, bytes * static_cast<std::size_t>(opts_.nprocs));
      },
      [](CollSite&) {}, [](CollSite&) {});
}

bool Engine::approximate_progress_step() {
  bool progressed = false;
  // Cancel every outstanding receive with a synthetic empty message: the
  // matching send never existed in the (approximated) trace.
  for (int comm = 0; comm < kNumComms; ++comm) {
    for (Rank r = 0; r < opts_.nprocs; ++r) {
      // Collect under the mailbox lock, deliver after releasing it —
      // deliver() takes the inbox lock and the consistent order everywhere
      // else is mailbox → inbox, never inbox → mailbox.
      std::vector<PendingRecv> cancelled;
      {
        const prof::TimedLockGuard mbox_lock(mbox_m_[box(comm, r)], prof::LockClass::kMailbox);
        race::ScopedSync mbox("engine.mailbox",
                              static_cast<std::uint64_t>(comm),
                              static_cast<std::uint64_t>(r));
        RACE_WRITE("engine.queues", static_cast<std::uint64_t>(comm),
                   static_cast<std::uint64_t>(r));
        auto& posted = pending_[box(comm, r)];
        while (!posted.empty()) {
          cancelled.push_back(posted.front());
          posted.pop_front();
        }
      }
      for (const PendingRecv& want : cancelled) {
        Message msg;
        msg.src = want.src_match == kAnySource ? 0 : want.src_match;
        msg.tag = want.tag_match == kAnyTag ? 0 : want.tag_match;
        RACE_READ("engine.vtime", static_cast<std::uint64_t>(r), 0);
        msg.arrive_vtime = vtime_[static_cast<std::size_t>(r)];
        deliver(r, want.req, std::move(msg));
        cancelled_recvs_.fetch_add(1, std::memory_order_relaxed);
        progressed = true;
      }
    }
  }
  // Force-complete collectives some ranks never reached. The stall handler
  // runs with every fiber quiescent, but take the locks anyway — the site
  // pointers must not dangle if a woken fiber erases a site on resume.
  const prof::TimedLockGuard map_lock(collmap_m_, prof::LockClass::kCollMap);
  for (auto& [key, site] : coll_sites_) {
    const prof::TimedLockGuard site_lock(site.m, prof::LockClass::kCollSite);
    race::ScopedSync sitelock("engine.collsite",
                              static_cast<std::uint64_t>(key.first),
                              key.second);
    RACE_WRITE("engine.collsite", static_cast<std::uint64_t>(key.first),
               key.second);
    if (site.done.load(std::memory_order_relaxed) || site.arrived == 0)
      continue;
    site.expected = site.arrived;
    site.complete_vtime = site.max_arrive;
    if (site.op == Op::kReduce || site.op == Op::kAllreduce) {
      fold_u64_contribs(site);
    }
    RACE_ATOMIC("engine.collsite.done", static_cast<std::uint64_t>(key.first),
                key.second);
    site.done.store(true, std::memory_order_release);
    if (key.first == kCommMarker) race::epoch();
    forced_collectives_.fetch_add(1, std::memory_order_relaxed);
    progressed = true;
    for (Rank r = 0; r < opts_.nprocs; ++r) scheduler_->unblock(r);
  }
  return progressed;
}

// --------------------------------------------------------------------------
// Fault injection
// --------------------------------------------------------------------------

std::vector<Rank> Engine::live_ranks() const {
  std::vector<Rank> out;
  for (Rank r = 0; r < opts_.nprocs; ++r)
    if (!is_failed(r)) out.push_back(r);
  return out;
}

std::vector<Rank> Engine::failed_ranks() const {
  std::vector<Rank> out;
  for (Rank r = 0; r < opts_.nprocs; ++r)
    if (is_failed(r)) out.push_back(r);
  return out;
}

void Engine::fault_point(Rank self, const CallInfo& info) {
  const auto s = static_cast<std::size_t>(self);
  const std::uint64_t call_index = ++call_count_[s];
  if (info.is_marker) ++marker_count_[s];
  const double slow = injector_->slowdown(self, call_index);
  if (slow > 0.0) {
    vtime_[s] += slow;
    if (obs::Timeline* tl = obs::timeline())
      tl->instant(obs::Timeline::rank_tid(self), "fault.slowdown", "fault",
                  {obs::arg_num("seconds", slow)});
  }
  const std::uint64_t site = site_probe_ ? site_probe_(self) : 0;
  if (injector_->crash_at_call(self, call_index, marker_count_[s], site)) {
    if (obs::Timeline* tl = obs::timeline())
      tl->instant(obs::Timeline::rank_tid(self), "fault.crash", "fault",
                  {obs::arg_int("call", static_cast<std::int64_t>(call_index))});
    fail_rank(self);
    scheduler_->exit_current();
  }
}

void Engine::tool_op_fault_point(Rank self) {
  const auto s = static_cast<std::size_t>(self);
  const std::uint64_t op_index = ++toolop_count_[s];
  if (injector_->crash_at_tool_op(self, op_index)) {
    if (obs::Timeline* tl = obs::timeline())
      tl->instant(obs::Timeline::rank_tid(self), "fault.crash", "fault",
                  {obs::arg_int("toolop", static_cast<std::int64_t>(op_index))});
    fail_rank(self);
    scheduler_->exit_current();
  }
}

void Engine::fail_rank(Rank r) {
  const auto s = static_cast<std::size_t>(r);
  RACE_ATOMIC("engine.failed", static_cast<std::uint64_t>(r), 0);
  if (failed_[s].exchange(true, std::memory_order_acq_rel)) return;
  failed_count_.fetch_add(1, std::memory_order_acq_rel);
  // A dead rank will never consume anything: purge its posted receives so a
  // live sender cannot match one (the send fails fast instead), and retire
  // its outstanding requests. fail_rank only ever runs on the dying rank's
  // own fiber, so the request slots stay owner-written.
  for (int comm = 0; comm < kNumComms; ++comm) {
    const prof::TimedLockGuard mbox_lock(mbox_m_[box(comm, r)], prof::LockClass::kMailbox);
    race::ScopedSync mbox("engine.mailbox", static_cast<std::uint64_t>(comm),
                          static_cast<std::uint64_t>(r));
    RACE_WRITE("engine.queues", static_cast<std::uint64_t>(comm),
               static_cast<std::uint64_t>(r));
    pending_[box(comm, r)].clear();
  }
  RACE_WRITE("engine.requests", static_cast<std::uint64_t>(r), 0);
  for (auto& state : requests_[s]) state.active = false;
}

bool Engine::complete_ready_sites() {
  bool progressed = false;
  const prof::TimedLockGuard map_lock(collmap_m_, prof::LockClass::kCollMap);
  for (auto& [key, site] : coll_sites_) {
    const prof::TimedLockGuard site_lock(site.m, prof::LockClass::kCollSite);
    race::ScopedSync sitelock("engine.collsite",
                              static_cast<std::uint64_t>(key.first),
                              key.second);
    RACE_WRITE("engine.collsite", static_cast<std::uint64_t>(key.first),
               key.second);
    if (site.done.load(std::memory_order_relaxed) || site.arrived == 0)
      continue;
    if (site.arrived < live_expected()) continue;
    site.expected = site.arrived;
    site.complete_vtime = site.max_arrive +
                          opts_.net.collective(site.arrived, site.bytes) +
                          opts_.ft.recv_fail_delay();
    if (site.op == Op::kReduce || site.op == Op::kAllreduce)
      fold_u64_contribs(site);
    RACE_ATOMIC("engine.collsite.done", static_cast<std::uint64_t>(key.first),
                key.second);
    site.done.store(true, std::memory_order_release);
    if (key.first != kCommTool)
      collectives_run_.fetch_add(1, std::memory_order_relaxed);
    if (key.first == kCommMarker) race::epoch();
    progressed = true;
    for (Rank r = 0; r < opts_.nprocs; ++r) scheduler_->unblock(r);
  }
  return progressed;
}

bool Engine::fault_progress_step() {
  // First route collectives around the dead: any site where every survivor
  // already arrived completes short-handed.
  bool progressed = complete_ready_sites();
  // Then time out receives whose awaited source is dead: deliver a
  // synthetic peer_failed completion after the full backoff budget.
  for (int comm = 0; comm < kNumComms; ++comm) {
    for (Rank r = 0; r < opts_.nprocs; ++r) {
      if (is_failed(r)) continue;
      // Same collect-then-deliver split as approximate_progress_step: the
      // lock order is mailbox → inbox, so deliver() runs unlocked.
      std::vector<PendingRecv> timed_out;
      {
        const prof::TimedLockGuard mbox_lock(mbox_m_[box(comm, r)], prof::LockClass::kMailbox);
        race::ScopedSync mbox("engine.mailbox",
                              static_cast<std::uint64_t>(comm),
                              static_cast<std::uint64_t>(r));
        RACE_WRITE("engine.queues", static_cast<std::uint64_t>(comm),
                   static_cast<std::uint64_t>(r));
        auto& posted = pending_[box(comm, r)];
        for (auto it = posted.begin(); it != posted.end();) {
          if (it->src_match == kAnySource || !is_failed(it->src_match)) {
            ++it;
            continue;
          }
          timed_out.push_back(*it);
          it = posted.erase(it);
        }
      }
      for (const PendingRecv& want : timed_out) {
        Message msg;
        msg.src = want.src_match;
        msg.tag = want.tag_match == kAnyTag ? 0 : want.tag_match;
        msg.peer_failed = true;
        RACE_READ("engine.vtime", static_cast<std::uint64_t>(r), 0);
        msg.arrive_vtime = vtime_[static_cast<std::size_t>(r)] +
                           opts_.ft.recv_fail_delay();
        deliver(r, want.req, std::move(msg));
        progressed = true;
      }
    }
  }
  return progressed;
}

void Engine::advance_compute(Rank self, double seconds) {
  CHAM_CHECK_MSG(seconds >= 0.0, "compute time must be non-negative");
  RACE_WRITE("engine.vtime", static_cast<std::uint64_t>(self), 0);
  vtime_[static_cast<std::size_t>(self)] += seconds;
}

// --------------------------------------------------------------------------
// Introspection
// --------------------------------------------------------------------------

bool Engine::rank_finished(Rank r) const {
  if (!scheduler_) return false;
  return scheduler_->finished(r);
}

std::vector<PendingRecvInfo> Engine::pending_recvs(int comm, Rank r) const {
  std::vector<PendingRecvInfo> out;
  const prof::TimedLockGuard mbox_lock(mbox_m_[box(comm, r)], prof::LockClass::kMailbox);
  for (const PendingRecv& p : pending_.at(box(comm, r)))
    out.push_back({p.src_match, p.tag_match});
  return out;
}

Engine::RequestCounts Engine::active_requests(Rank r) const {
  RequestCounts counts;
  for (const RequestState& state : requests_.at(static_cast<std::size_t>(r))) {
    if (!state.active || state.comm == kCommTool) continue;
    if (state.is_recv)
      ++counts.recvs;
    else
      ++counts.sends;
  }
  return counts;
}

// --------------------------------------------------------------------------
// Hook dispatch
// --------------------------------------------------------------------------

void Engine::tool_pre(Rank self, const CallInfo& info) {
  // Crashes fire at traced-call entry, before any tool hook runs: the rank
  // dies as if it never made the call, and the tool never observes it —
  // crashed calls therefore never open a timeline span either.
  if (injector_ != nullptr) fault_point(self, info);
  if (obs::Timeline* tl = obs::timeline()) {
    std::vector<obs::TimelineArg> args;
    if (info.peer != kAnySource) args.push_back(obs::arg_int("peer", info.peer));
    if (info.bytes != 0)
      args.push_back(
          obs::arg_int("bytes", static_cast<std::int64_t>(info.bytes)));
    tl->begin(obs::Timeline::rank_tid(self), op_name(info.op),
              info.is_marker ? "mpi.marker" : "mpi", std::move(args));
  }
  if (tool_ != nullptr) tool_->on_pre(self, info, pmpi(self));
}

void Engine::tool_post(Rank self, const CallInfo& info) {
  if (tool_ != nullptr) tool_->on_post(self, info, pmpi(self));
  // Closed after the post hook so the span covers tool work riding on the
  // call (marker clustering, finalize merges).
  if (obs::Timeline* tl = obs::timeline())
    tl->end(obs::Timeline::rank_tid(self));
}

}  // namespace cham::sim
