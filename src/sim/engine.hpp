// The minimpi engine: a deterministic, single-process MPI runtime.
//
// Every rank is a fiber (sim/fiber.hpp). The engine implements tag/source
// matched point-to-point messaging with eager (buffered) sends, tree-modelled
// collectives, per-rank virtual clocks driven by the NetModel, and a PMPI
// interposition layer: traced calls enter through the Mpi facade which fires
// tool pre/post hooks around the internal pmpi_* entry points, exactly the
// structure ScalaTrace/Chameleon rely on in real MPI.
//
// Communicators: all span the full world. kCommWorld carries application
// traffic, kCommMarker carries only the Chameleon marker barrier (the paper's
// "unique value in the communicator field"), kCommTool carries tool-internal
// traffic which never reaches the hooks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/netmodel.hpp"
#include "sim/types.hpp"

namespace cham::sim {

class Mpi;
class Pmpi;
class Tool;

struct EngineOptions {
  int nprocs = 4;
  std::size_t stack_bytes = 256 * 1024;
  NetModel net{};
};

/// An in-flight or delivered message.
struct Message {
  Rank src = 0;
  int tag = 0;
  std::size_t bytes = 0;            ///< declared size (drives the time model)
  std::vector<std::uint8_t> payload;  ///< actual data (may be empty)
  double arrive_vtime = 0.0;
};

/// Nonblocking-operation handle, indexed per rank.
using Request = int;
inline constexpr Request kNullRequest = -1;

/// What a rank is blocked on right now. Exposed so analysis tools can build
/// a wait-for graph from the engine's blocked-fiber state instead of parsing
/// the human-readable block notes.
struct BlockedState {
  enum class Kind : std::uint8_t { kNone, kRecv, kCollective };

  Kind kind = Kind::kNone;
  int comm = kCommWorld;
  // kRecv: the posted matching criteria of the awaited request.
  Rank src_match = kAnySource;
  int tag_match = kAnyTag;
  // kCollective: the operation and the per-comm rendezvous slot.
  Op op = Op::kBarrier;
  std::uint64_t slot = 0;
};

/// A posted-but-unmatched receive (introspection mirror of the engine's
/// pending queue entries).
struct PendingRecvInfo {
  Rank src_match = kAnySource;
  int tag_match = kAnyTag;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Install the PMPI tool (or nullptr for an uninstrumented run). Must be
  /// called before run().
  void set_tool(Tool* tool) { tool_ = tool; }

  /// Launch nprocs ranks, each executing rank_main, and drive them to
  /// completion. May be called once per Engine.
  void run(const std::function<void(Mpi&)>& rank_main);

  [[nodiscard]] int nprocs() const { return opts_.nprocs; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  [[nodiscard]] Tool* tool() const { return tool_; }

  /// Virtual completion time of a rank / of the whole run.
  [[nodiscard]] double vtime(Rank r) const;
  [[nodiscard]] double max_vtime() const;
  /// Sum of all ranks' completion times — the paper's "aggregated
  /// wall-clock times across all nodes".
  [[nodiscard]] double vtime_sum() const;
  /// Time rank r spent waiting (blocked on receives/collectives while its
  /// partners caught up) — the DVFS-harvestable idle time of the paper's
  /// §VIII energy discussion.
  [[nodiscard]] double wait_seconds(Rank r) const;

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t collectives_run() const { return collectives_run_; }

  /// Replay robustness: instead of reporting a deadlock when nothing can
  /// progress, cancel outstanding receives (synthetic empty messages) and
  /// force-complete partially-arrived collectives. Imperfectly clustered
  /// traces (K below the natural behaviour-group count) replay these
  /// approximations; the counters make the information loss visible.
  void enable_approximate_progress() { approximate_ = true; }
  [[nodiscard]] std::uint64_t cancelled_recvs() const { return cancelled_recvs_; }
  [[nodiscard]] std::uint64_t forced_collectives() const {
    return forced_collectives_;
  }

  // --- PMPI layer (used by the Mpi/Pmpi facades and by tools) -------------

  void pmpi_send(Rank self, int comm, Rank dest, int tag, std::size_t bytes,
                 std::vector<std::uint8_t> payload);
  Message pmpi_recv(Rank self, int comm, Rank src, int tag,
                    RecvStatus* status);
  Request pmpi_isend(Rank self, int comm, Rank dest, int tag,
                     std::size_t bytes, std::vector<std::uint8_t> payload);
  Request pmpi_irecv(Rank self, int comm, Rank src, int tag,
                     std::size_t declared_bytes);
  Message pmpi_wait(Rank self, Request req, RecvStatus* status);

  void pmpi_barrier(Rank self, int comm);
  /// Root's contribution is returned to everyone.
  std::vector<std::uint8_t> pmpi_bcast(Rank self, int comm, Rank root,
                                       std::vector<std::uint8_t> contrib,
                                       std::size_t declared_bytes);
  /// Elementwise reduction; result valid only at root (returned to all for
  /// simplicity; facades enforce root-only semantics).
  std::vector<std::uint64_t> pmpi_reduce(Rank self, int comm, Rank root,
                                         ReduceOp op,
                                         std::vector<std::uint64_t> contrib,
                                         std::size_t declared_bytes = 0);
  std::vector<std::uint64_t> pmpi_allreduce(Rank self, int comm, ReduceOp op,
                                            std::vector<std::uint64_t> contrib,
                                            std::size_t declared_bytes = 0);
  /// Per-rank byte blobs gathered to root (empty vector elsewhere).
  std::vector<std::vector<std::uint8_t>> pmpi_gather(
      Rank self, int comm, Rank root, std::vector<std::uint8_t> contrib,
      std::size_t declared_bytes = 0);
  std::vector<std::vector<std::uint8_t>> pmpi_allgather(
      Rank self, int comm, std::vector<std::uint8_t> contrib,
      std::size_t declared_bytes = 0);
  /// Root's per-rank blobs scattered; returns this rank's piece.
  std::vector<std::uint8_t> pmpi_scatter(
      Rank self, int comm, Rank root,
      std::vector<std::vector<std::uint8_t>> contrib,
      std::size_t declared_bytes = 0);
  /// Timing-only all-to-all of `bytes` per pair.
  void pmpi_alltoall(Rank self, int comm, std::size_t bytes);

  /// Advance a rank's virtual clock by a compute region.
  void advance_compute(Rank self, double seconds);

  /// State of one in-progress collective (public so free helper functions
  /// can fold contributions; not part of the user-facing API).
  struct CollSite {
    Op op = Op::kBarrier;
    Rank root = 0;
    ReduceOp rop = ReduceOp::kSum;
    std::size_t bytes = 0;
    int arrived = 0;
    int extracted = 0;
    double max_arrive = 0.0;
    bool done = false;
    double complete_vtime = 0.0;
    std::vector<std::vector<std::uint8_t>> byte_contribs;
    std::vector<std::vector<std::uint64_t>> u64_contribs;
    std::vector<std::uint8_t> bcast_result;
    std::vector<std::uint64_t> reduce_result;
  };

  // --- hook dispatch (called by the Mpi facade) ---------------------------
  void tool_pre(Rank self, const CallInfo& info);
  void tool_post(Rank self, const CallInfo& info);

  /// Per-rank untraced facade (valid during run()).
  Pmpi& pmpi(Rank r);

  // --- introspection (for analysis tools; valid during run()) ------------

  /// What rank r is blocked on (Kind::kNone while it is runnable/finished).
  [[nodiscard]] const BlockedState& blocked_state(Rank r) const {
    return blocked_.at(static_cast<std::size_t>(r));
  }
  /// True once rank r's fiber has returned from rank_main + finalize.
  [[nodiscard]] bool rank_finished(Rank r) const;
  /// Sent-but-never-received messages queued at rank r on `comm` — any
  /// entry surviving MPI_Finalize is a message leak.
  [[nodiscard]] const std::deque<Message>& unexpected_messages(int comm,
                                                              Rank r) const {
    return unexpected_.at(box(comm, r));
  }
  /// Posted receives still waiting for a matching send.
  [[nodiscard]] std::vector<PendingRecvInfo> pending_recvs(int comm,
                                                           Rank r) const;
  /// Active (never waited / never completed) requests of rank r on traced
  /// communicators, counted separately for sends and receives. Requests on
  /// the tool communicator are a tool's own business and excluded — one
  /// PMPI layer cannot see another layer's internal traffic. Eager isend
  /// requests complete immediately, so an unwaited send request is benign;
  /// an unwaited receive request holds a message (or a pending slot)
  /// forever.
  struct RequestCounts {
    int sends = 0;
    int recvs = 0;
  };
  [[nodiscard]] RequestCounts active_requests(Rank r) const;
  /// Number of collectives rank r has entered on `comm` (its next slot).
  [[nodiscard]] std::uint64_t collective_seq(int comm, Rank r) const {
    return coll_seq_.at(box(comm, r));
  }

 private:
  struct PendingRecv {
    Rank src_match = kAnySource;
    int tag_match = kAnyTag;
    Request req = kNullRequest;
  };

  struct RequestState {
    bool active = false;
    bool is_recv = false;
    bool complete = false;
    Message msg;
    std::size_t declared_bytes = 0;
    int comm = kCommWorld;
    /// Posted matching criteria (receives only; feeds BlockedState).
    Rank src_match = kAnySource;
    int tag_match = kAnyTag;
  };

  [[nodiscard]] std::size_t box(int comm, Rank r) const {
    return static_cast<std::size_t>(comm) * static_cast<std::size_t>(opts_.nprocs) +
           static_cast<std::size_t>(r);
  }
  static bool matches(const PendingRecv& pending, const Message& msg) {
    return (pending.src_match == kAnySource || pending.src_match == msg.src) &&
           (pending.tag_match == kAnyTag || pending.tag_match == msg.tag);
  }

  RequestState& request_state(Rank self, Request req);
  Request alloc_request(Rank self);
  void deliver(Rank dest, Request req, Message&& msg);
  bool approximate_progress_step();

  /// Collective rendezvous: blocks until all ranks of `comm` arrive at the
  /// same per-comm slot. The last arrival runs `finish` on the site; every
  /// participant then runs `extract` on the completed site to copy out its
  /// results. The site is destroyed once all participants extracted, so
  /// long runs do not accumulate per-collective state.
  void collective_arrive(Rank self, int comm, Op op,
                         const std::function<void(CollSite&)>& deposit,
                         const std::function<void(CollSite&)>& finish,
                         const std::function<void(CollSite&)>& extract);

  EngineOptions opts_;
  Tool* tool_ = nullptr;
  bool ran_ = false;
  bool approximate_ = false;
  std::uint64_t cancelled_recvs_ = 0;
  std::uint64_t forced_collectives_ = 0;

  std::unique_ptr<FiberScheduler> scheduler_;
  std::vector<Mpi> mpis_;
  std::vector<Pmpi> pmpis_;
  std::vector<double> vtime_;
  std::vector<double> wait_;
  std::vector<BlockedState> blocked_;  // [rank]

  static constexpr int kNumComms = 3;
  std::vector<std::deque<Message>> unexpected_;     // [comm*P + rank]
  std::vector<std::deque<PendingRecv>> pending_;    // [comm*P + rank]
  std::vector<std::vector<RequestState>> requests_;  // [rank]
  std::vector<std::uint64_t> coll_seq_;              // [comm*P + rank]
  std::map<std::pair<int, std::uint64_t>, CollSite> coll_sites_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t collectives_run_ = 0;
};

}  // namespace cham::sim
