// The minimpi engine: a deterministic, single-process MPI runtime.
//
// Every rank is a fiber (sim/fiber.hpp). The engine implements tag/source
// matched point-to-point messaging with eager (buffered) sends, tree-modelled
// collectives, per-rank virtual clocks driven by the NetModel, and a PMPI
// interposition layer: traced calls enter through the Mpi facade which fires
// tool pre/post hooks around the internal pmpi_* entry points, exactly the
// structure ScalaTrace/Chameleon rely on in real MPI.
//
// Communicators: all span the full world. kCommWorld carries application
// traffic, kCommMarker carries only the Chameleon marker barrier (the paper's
// "unique value in the communicator field"), kCommTool carries tool-internal
// traffic which never reaches the hooks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/netmodel.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace cham::sim {

class FaultInjector;
class Mpi;
class Pmpi;
class Tool;

/// Virtual-time budgets governing how survivors detect and ride out dead
/// peers (used only when a FaultInjector is installed).
struct FaultTolerance {
  /// Base virtual-time budget charged when a receive's source is dead: the
  /// receiver retries `retries` times with exponentially backed-off waits
  /// (recv_timeout * backoff^i) before giving up with peer_failed.
  double recv_timeout = 1.0e-4;
  int retries = 3;
  double backoff = 2.0;

  /// Total wait a failed receive costs: sum of all backed-off retries.
  [[nodiscard]] double recv_fail_delay() const {
    double total = 0.0;
    double step = recv_timeout;
    for (int i = 0; i < retries; ++i) {
      total += step;
      step *= backoff;
    }
    return total;
  }
};

struct EngineOptions {
  int nprocs = 4;
  // TSan instrumentation inflates frame sizes (shadow spills plus
  // __tsan_func_entry bookkeeping), and TSan is not told where fiber stacks
  // end (see src/sim/fiber.cpp), so give the engine + clustering call
  // chains generous headroom in that configuration only.
#if defined(__SANITIZE_THREAD__)
  std::size_t stack_bytes = 2 * 1024 * 1024;
#else
  std::size_t stack_bytes = 256 * 1024;
#endif
  NetModel net{};
  FaultTolerance ft{};
  /// Non-zero: dispatch ready fibers in seeded-shuffle order instead of
  /// FIFO (FiberScheduler::set_seed). Protocol output must not depend on
  /// this — the ChamRace determinism auditor diffs runs across seeds.
  std::uint64_t sched_seed = 0;
  /// Worker threads (shards) for the fiber scheduler. 1 — the default —
  /// keeps the classic single-threaded FiberScheduler, byte-for-byte
  /// identical to every earlier release; N > 1 installs the ChamShard
  /// ShardedScheduler with min(N, nprocs) shards. Protocol output is
  /// identical either way (docs/ENGINE.md, determinism contract).
  int threads = 1;
  /// Epoch window width for the sharded scheduler: fibers whose vtime is
  /// within `epoch_horizon` of the epoch's minimum run in the same barrier
  /// round. Negative — the default — means unbounded (every ready fiber
  /// runs every round, the SMPI scheduling-round discipline).
  double epoch_horizon = -1.0;
};

/// An in-flight or delivered message.
struct Message {
  Rank src = 0;
  int tag = 0;
  std::size_t bytes = 0;            ///< declared size (drives the time model)
  std::vector<std::uint8_t> payload;  ///< actual data (may be empty)
  double arrive_vtime = 0.0;
  /// Synthetic completion: the sender crashed, no data ever arrived.
  bool peer_failed = false;
};

/// Nonblocking-operation handle, indexed per rank.
using Request = int;
inline constexpr Request kNullRequest = -1;

/// What a rank is blocked on right now. Exposed so analysis tools can build
/// a wait-for graph from the engine's blocked-fiber state instead of parsing
/// the human-readable block notes.
struct BlockedState {
  enum class Kind : std::uint8_t { kNone, kRecv, kCollective };

  Kind kind = Kind::kNone;
  int comm = kCommWorld;
  // kRecv: the posted matching criteria of the awaited request.
  Rank src_match = kAnySource;
  int tag_match = kAnyTag;
  // kCollective: the operation and the per-comm rendezvous slot.
  Op op = Op::kBarrier;
  std::uint64_t slot = 0;
};

/// A posted-but-unmatched receive (introspection mirror of the engine's
/// pending queue entries).
struct PendingRecvInfo {
  Rank src_match = kAnySource;
  int tag_match = kAnyTag;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Install the PMPI tool (or nullptr for an uninstrumented run). Must be
  /// called before run().
  void set_tool(Tool* tool) { tool_ = tool; }

  /// Install a fault injector (or nullptr). Must be called before run().
  /// With no injector the engine takes none of the fault-tolerance code
  /// paths, so fault-free runs are bit-identical to pre-fault-support runs.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] bool fault_injection_enabled() const {
    return injector_ != nullptr;
  }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Optional probe mapping a rank to its innermost call-site id; enables
  /// `crash ... site=` triggers. The sim layer cannot see the trace layer's
  /// CallSiteRegistry, so the harness wires this up.
  void set_site_probe(std::function<std::uint64_t(Rank)> probe) {
    site_probe_ = std::move(probe);
  }

  // --- liveness (fault injection) ----------------------------------------

  /// True once rank r was killed by an injected crash.
  [[nodiscard]] bool is_failed(Rank r) const {
    return failed_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }
  [[nodiscard]] int failed_count() const {
    return failed_count_.load(std::memory_order_acquire);
  }
  /// Surviving ranks, ascending. Equals [0, nprocs) with no failures.
  [[nodiscard]] std::vector<Rank> live_ranks() const;
  [[nodiscard]] std::vector<Rank> failed_ranks() const;
  [[nodiscard]] std::uint64_t messages_lost() const {
    return messages_lost_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_.load(std::memory_order_relaxed);
  }

  /// Launch nprocs ranks, each executing rank_main, and drive them to
  /// completion. May be called once per Engine.
  void run(const std::function<void(Mpi&)>& rank_main);

  [[nodiscard]] int nprocs() const { return opts_.nprocs; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  [[nodiscard]] Tool* tool() const { return tool_; }

  /// Virtual completion time of a rank / of the whole run.
  [[nodiscard]] double vtime(Rank r) const;
  [[nodiscard]] double max_vtime() const;
  /// Sum of all ranks' completion times — the paper's "aggregated
  /// wall-clock times across all nodes".
  [[nodiscard]] double vtime_sum() const;
  /// Time rank r spent waiting (blocked on receives/collectives while its
  /// partners caught up) — the DVFS-harvestable idle time of the paper's
  /// §VIII energy discussion.
  [[nodiscard]] double wait_seconds(Rank r) const;

  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t collectives_run() const {
    return collectives_run_.load(std::memory_order_relaxed);
  }

  /// Replay robustness: instead of reporting a deadlock when nothing can
  /// progress, cancel outstanding receives (synthetic empty messages) and
  /// force-complete partially-arrived collectives. Imperfectly clustered
  /// traces (K below the natural behaviour-group count) replay these
  /// approximations; the counters make the information loss visible.
  void enable_approximate_progress() { approximate_ = true; }
  [[nodiscard]] std::uint64_t cancelled_recvs() const {
    return cancelled_recvs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t forced_collectives() const {
    return forced_collectives_.load(std::memory_order_relaxed);
  }

  // --- PMPI layer (used by the Mpi/Pmpi facades and by tools) -------------

  CommResult pmpi_send(Rank self, int comm, Rank dest, int tag,
                       std::size_t bytes, std::vector<std::uint8_t> payload);
  Message pmpi_recv(Rank self, int comm, Rank src, int tag,
                    RecvStatus* status);
  /// Nonblocking probe-and-receive: succeeds only when a matching message
  /// is already queued. Used by fault-tolerant protocols to drain re-homed
  /// payloads after a synchronization point.
  bool pmpi_try_recv(Rank self, int comm, Rank src, int tag, Message* out);
  Request pmpi_isend(Rank self, int comm, Rank dest, int tag,
                     std::size_t bytes, std::vector<std::uint8_t> payload);
  Request pmpi_irecv(Rank self, int comm, Rank src, int tag,
                     std::size_t declared_bytes);
  Message pmpi_wait(Rank self, Request req, RecvStatus* status);

  void pmpi_barrier(Rank self, int comm);
  /// Root's contribution is returned to everyone.
  std::vector<std::uint8_t> pmpi_bcast(Rank self, int comm, Rank root,
                                       std::vector<std::uint8_t> contrib,
                                       std::size_t declared_bytes);
  /// Elementwise reduction; result valid only at root (returned to all for
  /// simplicity; facades enforce root-only semantics).
  std::vector<std::uint64_t> pmpi_reduce(Rank self, int comm, Rank root,
                                         ReduceOp op,
                                         std::vector<std::uint64_t> contrib,
                                         std::size_t declared_bytes = 0);
  std::vector<std::uint64_t> pmpi_allreduce(Rank self, int comm, ReduceOp op,
                                            std::vector<std::uint64_t> contrib,
                                            std::size_t declared_bytes = 0);
  /// Per-rank byte blobs gathered to root (empty vector elsewhere).
  std::vector<std::vector<std::uint8_t>> pmpi_gather(
      Rank self, int comm, Rank root, std::vector<std::uint8_t> contrib,
      std::size_t declared_bytes = 0);
  std::vector<std::vector<std::uint8_t>> pmpi_allgather(
      Rank self, int comm, std::vector<std::uint8_t> contrib,
      std::size_t declared_bytes = 0);
  /// Root's per-rank blobs scattered; returns this rank's piece.
  std::vector<std::uint8_t> pmpi_scatter(
      Rank self, int comm, Rank root,
      std::vector<std::vector<std::uint8_t>> contrib,
      std::size_t declared_bytes = 0);
  /// Timing-only all-to-all of `bytes` per pair.
  void pmpi_alltoall(Rank self, int comm, std::size_t bytes);

  /// Advance a rank's virtual clock by a compute region.
  void advance_compute(Rank self, double seconds);

  /// State of one in-progress collective (public so free helper functions
  /// can fold contributions; not part of the user-facing API).
  struct CollSite {
    /// Per-site lock: guards every field except `done` (shard workers of
    /// different ranks deposit/extract concurrently). Innermost after the
    /// collmap lock; never held across a block().
    std::mutex m;
    Op op = Op::kBarrier;
    Rank root = 0;
    ReduceOp rop = ReduceOp::kSum;
    std::size_t bytes = 0;
    int arrived = 0;
    int extracted = 0;
    /// Participants this site waits for before completing and how many
    /// extractions destroy it. Set at completion time: nprocs normally,
    /// fewer when dead ranks are routed around.
    int expected = 0;
    double max_arrive = 0.0;
    /// Completion flag, read lock-free by waiting participants' condition
    /// loops (store-release by the completer pairs with their load-acquire).
    std::atomic<bool> done{false};
    double complete_vtime = 0.0;
    std::vector<std::vector<std::uint8_t>> byte_contribs;
    std::vector<std::vector<std::uint64_t>> u64_contribs;
    std::vector<std::uint8_t> bcast_result;
    std::vector<std::uint64_t> reduce_result;
  };

  // --- hook dispatch (called by the Mpi facade) ---------------------------
  void tool_pre(Rank self, const CallInfo& info);
  void tool_post(Rank self, const CallInfo& info);

  /// Per-rank untraced facade (valid during run()).
  Pmpi& pmpi(Rank r);

  // --- introspection (for analysis tools; valid during run()) ------------

  /// What rank r is blocked on (Kind::kNone while it is runnable/finished).
  [[nodiscard]] const BlockedState& blocked_state(Rank r) const {
    return blocked_.at(static_cast<std::size_t>(r));
  }
  /// True once rank r's fiber has returned from rank_main + finalize.
  [[nodiscard]] bool rank_finished(Rank r) const;
  /// Sent-but-never-received messages queued at rank r on `comm` — any
  /// entry surviving MPI_Finalize is a message leak.
  [[nodiscard]] const std::deque<Message>& unexpected_messages(int comm,
                                                              Rank r) const {
    return unexpected_.at(box(comm, r));
  }
  /// Posted receives still waiting for a matching send.
  [[nodiscard]] std::vector<PendingRecvInfo> pending_recvs(int comm,
                                                           Rank r) const;
  /// Active (never waited / never completed) requests of rank r on traced
  /// communicators, counted separately for sends and receives. Requests on
  /// the tool communicator are a tool's own business and excluded — one
  /// PMPI layer cannot see another layer's internal traffic. Eager isend
  /// requests complete immediately, so an unwaited send request is benign;
  /// an unwaited receive request holds a message (or a pending slot)
  /// forever.
  struct RequestCounts {
    int sends = 0;
    int recvs = 0;
  };
  [[nodiscard]] RequestCounts active_requests(Rank r) const;
  /// Number of collectives rank r has entered on `comm` (its next slot).
  [[nodiscard]] std::uint64_t collective_seq(int comm, Rank r) const {
    return coll_seq_.at(box(comm, r));
  }

 private:
  struct PendingRecv {
    Rank src_match = kAnySource;
    int tag_match = kAnyTag;
    Request req = kNullRequest;
  };

  struct RequestState {
    bool active = false;
    bool is_recv = false;
    bool complete = false;
    Message msg;
    std::size_t declared_bytes = 0;
    int comm = kCommWorld;
    /// Posted matching criteria (receives only; feeds BlockedState).
    Rank src_match = kAnySource;
    int tag_match = kAnyTag;
  };

  [[nodiscard]] std::size_t box(int comm, Rank r) const {
    return static_cast<std::size_t>(comm) * static_cast<std::size_t>(opts_.nprocs) +
           static_cast<std::size_t>(r);
  }
  static bool matches(const PendingRecv& pending, const Message& msg) {
    return (pending.src_match == kAnySource || pending.src_match == msg.src) &&
           (pending.tag_match == kAnyTag || pending.tag_match == msg.tag);
  }

  RequestState& request_state(Rank self, Request req);
  Request alloc_request(Rank self);
  /// Queue a completion into dest's inbox and wake it. The sender never
  /// touches dest's request slots directly: requests_[dest] can reallocate
  /// while a message is in flight, so only the owning rank (drain_inbox)
  /// writes them — the exact ownership split the sharded engine needs.
  void deliver(Rank dest, Request req, Message&& msg);
  /// Move queued completions into our own request slots (called by the
  /// owning rank from pmpi_wait).
  void drain_inbox(Rank self);
  bool approximate_progress_step();

  // --- fault machinery (active only with an installed injector) -----------

  /// Consulted at every traced-call entry; kills the calling fiber if the
  /// plan says so (never returns in that case).
  void fault_point(Rank self, const CallInfo& info);
  /// Consulted at tool-communicator p2p entries (`toolop=` triggers) so a
  /// rank can die mid-protocol; never inside a collective.
  void tool_op_fault_point(Rank self);
  /// Mark r dead, cancel its posted receives, complete any collective sites
  /// it already joined, and fail live peers blocked on it.
  void fail_rank(Rank r);
  /// Complete collectives whose live participants have all arrived (dead
  /// ranks are routed around). Returns true if any site completed.
  bool complete_ready_sites();
  /// Stall-handler step for faulty runs: synthesises peer_failed completions
  /// for receives whose source is dead and force-completes short-handed
  /// collectives. Returns true if it unblocked someone.
  bool fault_progress_step();
  /// Ranks a collective must wait for: everyone still alive.
  [[nodiscard]] int live_expected() const {
    return opts_.nprocs - failed_count_.load(std::memory_order_acquire);
  }

  /// Collective rendezvous: blocks until all ranks of `comm` arrive at the
  /// same per-comm slot. The last arrival runs `finish` on the site; every
  /// participant then runs `extract` on the completed site to copy out its
  /// results. The site is destroyed once all participants extracted, so
  /// long runs do not accumulate per-collective state.
  void collective_arrive(Rank self, int comm, Op op,
                         const std::function<void(CollSite&)>& deposit,
                         const std::function<void(CollSite&)>& finish,
                         const std::function<void(CollSite&)>& extract);

  EngineOptions opts_;
  Tool* tool_ = nullptr;
  FaultInjector* injector_ = nullptr;
  std::function<std::uint64_t(Rank)> site_probe_;
  bool ran_ = false;
  bool approximate_ = false;
  std::atomic<std::uint64_t> cancelled_recvs_{0};
  std::atomic<std::uint64_t> forced_collectives_{0};

  std::unique_ptr<Scheduler> scheduler_;
  std::vector<Mpi> mpis_;
  std::vector<Pmpi> pmpis_;
  // Owner-written per-rank state: only rank r's fiber writes slot r, so no
  // lock is needed; cross-rank reads happen at quiescent points (the epoch
  // planner, the stall handler, post-run) or through the vtime probe whose
  // reads the epoch barrier orders. The ChamRace analyzer checks exactly
  // this single-writer discipline.
  std::vector<double> vtime_;
  std::vector<double> wait_;
  std::vector<BlockedState> blocked_;  // [rank]

  static constexpr int kNumComms = 3;
  // Cross-rank mailboxes, guarded by real locks so shard workers can send
  // into any rank concurrently (lock order, outer to inner: mailbox →
  // inbox → scheduler shard; collmap → site; never a cycle):
  //   mbox_m_[box(comm, r)]  — pending_/unexpected_ of (comm, r)
  //   inbox_m_[r]            — inbox_[r]
  //   collmap_m_             — coll_sites_ map shape (insert/erase)
  //   CollSite::m            — one site's fields
  // With threads == 1 the locks are always uncontended — one futex-free
  // atomic op each — keeping the classic path's behaviour and speed.
  std::unique_ptr<std::mutex[]> mbox_m_;             // [comm*P + rank]
  std::unique_ptr<std::mutex[]> inbox_m_;            // [rank]
  std::mutex collmap_m_;
  std::vector<std::deque<Message>> unexpected_;     // [comm*P + rank]
  std::vector<std::deque<PendingRecv>> pending_;    // [comm*P + rank]
  std::vector<std::vector<RequestState>> requests_;  // [rank]
  /// Completed-delivery inboxes, one per receiving rank (see deliver()).
  std::vector<std::deque<std::pair<Request, Message>>> inbox_;  // [rank]
  std::vector<std::uint64_t> coll_seq_;              // [comm*P + rank]
  std::map<std::pair<int, std::uint64_t>, CollSite> coll_sites_;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> collectives_run_{0};

  // Fault-injection state (all zero/empty without an installed injector).
  std::unique_ptr<std::atomic<bool>[]> failed_;  // [rank]
  std::atomic<int> failed_count_{0};
  std::vector<std::uint64_t> call_count_;    // [rank] traced calls entered
  std::vector<std::uint64_t> marker_count_;  // [rank] markers entered
  std::vector<std::uint64_t> toolop_count_;  // [rank] tool-comm p2p ops
  std::atomic<std::uint64_t> messages_lost_{0};
  std::atomic<std::uint64_t> retransmissions_{0};
};

}  // namespace cham::sim
