#include "sim/fault.hpp"

#include <sstream>
#include <stdexcept>

#include "support/hash.hpp"

namespace cham::sim {

namespace {

/// Uniform double in [0, 1) from a deterministic hash stream.
double hash_unit(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                 std::uint64_t n) {
  std::uint64_t h = support::mix64(seed ^ support::hash_combine(a, b));
  h = support::hash_combine(h, n);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[noreturn]] void bad_plan(const std::string& token, const std::string& why) {
  throw std::invalid_argument("fault plan: " + why + " ('" + token + "')");
}

std::uint64_t parse_u64(const std::string& token, const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    bad_plan(token, "expected an integer");
  }
}

double parse_f64(const std::string& token, const std::string& value) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    bad_plan(token, "expected a number");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  // Strip comments per physical line first, so a '#' comment may contain
  // ';' without spawning a bogus spec; only then split the rest on ';'.
  std::string normalized;
  std::istringstream raw_lines(text);
  std::string raw;
  while (std::getline(raw_lines, raw)) {
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    for (char& c : raw)
      if (c == ';') c = '\n';
    normalized += raw;
    normalized += '\n';
  }

  std::istringstream lines(normalized);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) continue;  // blank line

    FaultSpec spec;
    if (word == "crash") {
      spec.kind = FaultKind::kCrash;
    } else if (word == "drop") {
      spec.kind = FaultKind::kDrop;
    } else if (word == "slow") {
      spec.kind = FaultKind::kSlowdown;
    } else {
      bad_plan(word, "unknown fault kind");
    }

    while (words >> word) {
      const auto eq = word.find('=');
      if (eq == std::string::npos) bad_plan(word, "expected key=value");
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      if (key == "rank") {
        spec.rank = static_cast<Rank>(parse_u64(word, value));
      } else if (key == "call") {
        spec.at_call = parse_u64(word, value);
      } else if (key == "marker") {
        spec.at_marker = parse_u64(word, value);
      } else if (key == "site") {
        spec.at_site = support::fnv1a64(value);
      } else if (key == "toolop") {
        spec.at_toolop = parse_u64(word, value);
      } else if (key == "src") {
        spec.rank = static_cast<Rank>(parse_u64(word, value));
      } else if (key == "dest") {
        spec.dest = static_cast<Rank>(parse_u64(word, value));
      } else if (key == "prob") {
        spec.probability = parse_f64(word, value);
      } else if (key == "span") {
        spec.span_calls = parse_u64(word, value);
      } else if (key == "secs") {
        spec.slow_seconds = parse_f64(word, value);
      } else {
        bad_plan(word, "unknown key");
      }
    }

    if (spec.kind == FaultKind::kCrash) {
      if (spec.rank < 0) bad_plan(line, "crash needs rank=");
      if (spec.at_call + spec.at_marker + spec.at_site + spec.at_toolop == 0)
        bad_plan(line, "crash needs one of call=/marker=/site=/toolop=");
    }
    if (spec.kind == FaultKind::kSlowdown) {
      if (spec.rank < 0) bad_plan(line, "slow needs rank=");
      if (spec.slow_seconds < 0) bad_plan(line, "slow needs secs >= 0");
    }
    if (spec.kind == FaultKind::kDrop &&
        (spec.probability < 0.0 || spec.probability > 1.0)) {
      bad_plan(line, "drop probability must be in [0, 1]");
    }
    plan.faults.push_back(spec);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (const FaultSpec& f : faults) {
    switch (f.kind) {
      case FaultKind::kCrash:
        os << "crash rank=" << f.rank;
        if (f.at_call) os << " call=" << f.at_call;
        if (f.at_marker) os << " marker=" << f.at_marker;
        if (f.at_site) os << " site=0x" << std::hex << f.at_site << std::dec;
        if (f.at_toolop) os << " toolop=" << f.at_toolop;
        break;
      case FaultKind::kDrop:
        os << "drop";
        if (f.rank != kAnySource) os << " src=" << f.rank;
        if (f.dest != kAnySource) os << " dest=" << f.dest;
        os << " prob=" << f.probability;
        break;
      case FaultKind::kSlowdown:
        os << "slow rank=" << f.rank << " call=" << f.at_call
           << " span=" << f.span_calls << " secs=" << f.slow_seconds;
        break;
    }
    os << '\n';
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.faults.size(), false) {}

bool FaultInjector::fire_crash(std::size_t spec_index) {
  if (fired_[spec_index]) return false;
  fired_[spec_index] = true;
  ++crashes_;
  return true;
}

bool FaultInjector::crash_at_call(Rank rank, std::uint64_t call_index,
                                  std::uint64_t marker_number,
                                  std::uint64_t site) {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.kind != FaultKind::kCrash || f.rank != rank) continue;
    if ((f.at_call != 0 && f.at_call == call_index) ||
        (f.at_marker != 0 && marker_number != 0 &&
         f.at_marker == marker_number) ||
        (f.at_site != 0 && f.at_site == site)) {
      if (fire_crash(i)) return true;
    }
  }
  return false;
}

bool FaultInjector::crash_at_tool_op(Rank rank, std::uint64_t op_index) {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.kind != FaultKind::kCrash || f.rank != rank) continue;
    if (f.at_toolop != 0 && f.at_toolop == op_index && fire_crash(i))
      return true;
  }
  return false;
}

double FaultInjector::slowdown(Rank rank, std::uint64_t call_index) const {
  double penalty = 0.0;
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::kSlowdown || f.rank != rank) continue;
    const std::uint64_t first = f.at_call == 0 ? 1 : f.at_call;
    if (call_index >= first && call_index < first + f.span_calls)
      penalty += f.slow_seconds;
  }
  return penalty;
}

bool FaultInjector::drop_message(Rank src, Rank dest) {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::kDrop) continue;
    if (f.rank != kAnySource && f.rank != src) continue;
    if (f.dest != kAnySource && f.dest != dest) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
        static_cast<std::uint32_t>(dest);
    const std::uint64_t attempt = drop_attempts_[key]++;
    if (hash_unit(plan_.seed, static_cast<std::uint64_t>(src),
                  static_cast<std::uint64_t>(dest),
                  attempt) < f.probability) {
      ++drops_;
      return true;
    }
  }
  return false;
}

}  // namespace cham::sim
