// Virtual-time cost model for the simulated interconnect.
//
// A LogP-flavoured model: point-to-point transfers cost latency plus a
// bandwidth term; tree collectives cost ceil(log2 P) rounds. Absolute values
// default to QDR-InfiniBand-like constants (the paper's testbed fabric), but
// only relative shapes matter for the reproduced experiments.
#pragma once

#include <cmath>
#include <cstddef>

namespace cham::sim {

struct NetModel {
  /// One-way small-message latency (seconds).
  double latency = 2.0e-6;
  /// Inverse bandwidth (seconds per byte); 3.2 GB/s ~ QDR IB payload rate.
  double per_byte = 1.0 / 3.2e9;
  /// Sender-side CPU overhead per call.
  double send_overhead = 0.5e-6;
  /// Receiver-side CPU overhead per call.
  double recv_overhead = 0.5e-6;

  [[nodiscard]] double p2p_transfer(std::size_t bytes) const {
    return latency + per_byte * static_cast<double>(bytes);
  }

  [[nodiscard]] static int log2_ceil(int p) {
    int levels = 0;
    int span = 1;
    while (span < p) {
      span <<= 1;
      ++levels;
    }
    return levels;
  }

  /// Completion cost of a tree collective after the last participant
  /// arrives. A single-process communicator needs zero rounds: nothing
  /// crosses the wire, so the collective is free.
  [[nodiscard]] double collective(int nprocs, std::size_t bytes) const {
    const int rounds = log2_ceil(nprocs);
    return static_cast<double>(rounds) *
           (latency + per_byte * static_cast<double>(bytes));
  }
};

}  // namespace cham::sim
