// Rank-facing MPI facades.
//
// `Mpi` is the traced API used by applications/workloads: every call fires
// the installed tool's pre/post hooks around the engine's pmpi_* entry
// points (the PMPI interposition pattern). Calls declare their transfer
// size in bytes; payloads are optional because the paper's workloads are
// communication skeletons.
//
// `Pmpi` is the untraced API used by tools for their own control traffic
// (clustering votes, signature exchange, trace merging). It operates on the
// dedicated tool communicator and never re-enters the hooks.
#pragma once

#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace cham::sim {

class Pmpi {
 public:
  Pmpi(Engine& engine, Rank rank) : engine_(&engine), rank_(rank) {}

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const { return engine_->nprocs(); }
  [[nodiscard]] double vtime() const { return engine_->vtime(rank_); }
  [[nodiscard]] Engine& engine() const { return *engine_; }

  // Point-to-point on the tool communicator. Sends report delivery failure
  // (dead destination, retry budget exhausted) via CommResult; fault-aware
  // protocols branch on it, everything else can ignore the result.
  CommResult send_bytes(Rank dest, int tag,
                        std::vector<std::uint8_t> data) const;
  std::vector<std::uint8_t> recv_bytes(Rank src, int tag,
                                       RecvStatus* status = nullptr) const;
  /// Nonblocking drain of an already-queued message; false if none matches.
  bool try_recv_bytes(Rank src, int tag, std::vector<std::uint8_t>* data,
                      RecvStatus* status = nullptr) const;

  // Collectives on the tool communicator.
  void barrier() const;
  std::uint64_t reduce_u64(std::uint64_t value, ReduceOp op, Rank root) const;
  std::uint64_t allreduce_u64(std::uint64_t value, ReduceOp op) const;
  std::uint64_t bcast_u64(std::uint64_t value, Rank root) const;
  std::vector<std::uint8_t> bcast_bytes(std::vector<std::uint8_t> data,
                                        Rank root) const;
  std::vector<std::vector<std::uint8_t>> gather_bytes(
      std::vector<std::uint8_t> data, Rank root) const;

 private:
  Engine* engine_;
  Rank rank_;
};

class Mpi {
 public:
  Mpi(Engine& engine, Rank rank) : engine_(&engine), rank_(rank) {}

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const { return engine_->nprocs(); }
  [[nodiscard]] double vtime() const { return engine_->vtime(rank_); }
  [[nodiscard]] Engine& engine() const { return *engine_; }

  /// Fired once by the engine before rank_main / after it returns.
  void init();
  void finalize();

  // --- traced point-to-point (world communicator) ---
  // `absolute_peer` marks the partner as a fixed rank (master/root) rather
  // than an offset from the caller; tracing tools encode it absolutely.
  CommResult send(Rank dest, std::size_t bytes, int tag = 0,
                  std::vector<std::uint8_t> payload = {},
                  bool absolute_peer = false);
  RecvStatus recv(Rank src, std::size_t bytes, int tag = kAnyTag,
                  std::vector<std::uint8_t>* payload = nullptr,
                  bool absolute_peer = false);
  Request isend(Rank dest, std::size_t bytes, int tag = 0,
                std::vector<std::uint8_t> payload = {},
                bool absolute_peer = false);
  Request irecv(Rank src, std::size_t bytes, int tag = kAnyTag,
                bool absolute_peer = false);
  RecvStatus wait(Request req);
  void waitall(std::span<Request> reqs);

  // --- traced collectives (world communicator) ---
  void barrier();
  void bcast(std::size_t bytes, Rank root);
  void reduce(std::size_t bytes, Rank root);
  void allreduce(std::size_t bytes);
  void gather(std::size_t bytes, Rank root);
  void scatter(std::size_t bytes, Rank root);
  void allgather(std::size_t bytes);
  void alltoall(std::size_t bytes);

  /// The Chameleon marker: an MPI_Barrier on the dedicated marker
  /// communicator (the paper's "unique value in the communicator field").
  void marker();

  /// A compute region of the given virtual duration.
  void compute(double seconds);

  /// Untraced escape hatch (mainly for examples that ship real data).
  [[nodiscard]] Pmpi& pmpi() const { return engine_->pmpi(rank_); }

 private:
  struct HookScope;

  Engine* engine_;
  Rank rank_;
  /// Pending irecv bookkeeping so wait() can report a CallInfo with the
  /// posted parameters of the request it completes.
  struct PostedRecv {
    Rank src = kAnySource;
    int tag = kAnyTag;
    std::size_t bytes = 0;
  };
  std::vector<PostedRecv> posted_;  // indexed by Request
  void remember_posted(Request req, const PostedRecv& rec);
  [[nodiscard]] PostedRecv posted_of(Request req) const;
};

}  // namespace cham::sim
