// Sanitizer glue shared by the fiber schedulers (fiber.cpp, shard.cpp).
//
// AddressSanitizer tracks one stack per thread; ucontext switches move
// execution to a different stack behind its back, so every switch must be
// announced via the fiber annotations — otherwise exception unwinding on a
// fiber stack (__asan_handle_no_return) produces false positives.
//
// ThreadSanitizer: we deliberately do NOT announce ucontext switches via
// the __tsan_*_fiber API. GCC 12's libtsan fiber support is broken — the
// sync-on-switch Release and ThreadState reuse after __tsan_destroy_fiber
// both SEGV inside the runtime after a handful of fibers (StackDepot hash
// walking a stale shadow stack; reproducible with a 60-line standalone
// probe). Leaving TSan unaware of fibers is semantically right for both
// schedulers anyway: every fiber is pinned to one hosting OS thread (the
// single scheduler thread, or its owning shard's worker), so attributing
// all its accesses to that thread models exactly the real happens-before;
// cross-THREAD races — the only real ones — are still caught via the
// genuine mutex/atomic edges. Define CHAM_TSAN_FIBER_API=1 to re-enable
// the hooks on a fixed libtsan.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define CHAM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CHAM_ASAN_FIBERS 1
#endif
#endif

#if defined(CHAM_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(CHAM_TSAN_FIBER_API) && CHAM_TSAN_FIBER_API
#define CHAM_TSAN_FIBERS 1
#endif

#if defined(CHAM_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace cham::sim::detail {

/// Announce a switch away from the current stack onto [bottom, bottom+size).
/// `save` receives the departing context's fake-stack handle (nullptr when
/// the departing context is about to die).
inline void sanitizer_pre_switch(void** save, const void* bottom,
                                 std::size_t size) {
#if defined(CHAM_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}

/// Complete a switch: `restore` is the handle saved when the now-current
/// context last departed (nullptr on first entry); the out-params receive
/// the bounds of the stack we came from.
inline void sanitizer_post_switch(void* restore, const void** old_bottom,
                                  std::size_t* old_size) {
#if defined(CHAM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(restore, old_bottom, old_size);
#else
  (void)restore;
  (void)old_bottom;
  (void)old_size;
#endif
}

inline void* tsan_make_fiber() {
#if defined(CHAM_TSAN_FIBERS)
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void* tsan_this_fiber() {
#if defined(CHAM_TSAN_FIBERS)
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void tsan_free_fiber(void* fiber) {
#if defined(CHAM_TSAN_FIBERS)
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

/// Announce the ucontext switch about to happen; call immediately before
/// swapcontext (or before falling off the trampoline into uc_link).
inline void tsan_switch(void* target) {
#if defined(CHAM_TSAN_FIBERS)
  if (target != nullptr) __tsan_switch_to_fiber(target, 0);
#else
  (void)target;
#endif
}

}  // namespace cham::sim::detail
