#include "sim/fiber.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/prof/profiler.hpp"
#include "obs/timeline.hpp"
#include "support/logging.hpp"

#include "analysis/race/annotate.hpp"
#include "sim/context.hpp"

namespace cham::sim {

namespace prof = obs::prof;

using detail::sanitizer_post_switch;
using detail::sanitizer_pre_switch;
using detail::tsan_free_fiber;
using detail::tsan_make_fiber;
using detail::tsan_switch;
using detail::tsan_this_fiber;

namespace detail {

Fiber::Fiber(std::size_t bytes, std::function<void()> fn)
    : stack(new char[bytes]), stack_bytes(bytes), entry(std::move(fn)) {}

Fiber::~Fiber() { tsan_free_fiber(tsan_fiber); }

}  // namespace detail

void FiberScheduler::trampoline(unsigned hi, unsigned lo) {
  auto* fiber = reinterpret_cast<detail::Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  FiberScheduler* sched = fiber->scheduler;
  // First time on this stack; the stack we came from is the scheduler's.
  sanitizer_post_switch(nullptr, &sched->main_stack_bottom_,
                        &sched->main_stack_size_);
  try {
    fiber->entry();
  } catch (const detail::FiberCancelled&) {
    // Deliberate unwind during cancellation; not an application error.
  } catch (...) {
    if (!sched->pending_exception_)
      sched->pending_exception_ = std::current_exception();
  }
  fiber->state = detail::FiberState::kFinished;
  ++sched->finished_;
  // Falling off the trampoline returns to uc_link (the scheduler context).
  // This stack is dying: release its fake stack (nullptr save slot).
  sanitizer_pre_switch(nullptr, sched->main_stack_bottom_,
                       sched->main_stack_size_);
  tsan_switch(sched->main_tsan_fiber_);
}

int FiberScheduler::spawn(std::function<void()> entry,
                          std::size_t stack_bytes) {
  CHAM_CHECK_MSG(current_ == -1, "spawn must be called outside fibers");
  auto fiber = std::make_unique<detail::Fiber>(stack_bytes, std::move(entry));
  fiber->id = static_cast<int>(fibers_.size());
  fiber->scheduler = this;

  CHAM_CHECK(getcontext(&fiber->context) == 0);
  fiber->context.uc_stack.ss_sp = fiber->stack.get();
  fiber->context.uc_stack.ss_size = fiber->stack_bytes;
  fiber->context.uc_link = &main_context_;
  const auto ptr = reinterpret_cast<std::uintptr_t>(fiber.get());
  makecontext(&fiber->context, reinterpret_cast<void (*)()>(&trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));

  fiber->tsan_fiber = tsan_make_fiber();
  ready_.push_back(fiber->id);
  fibers_.push_back(std::move(fiber));
  const int id = fibers_.back()->id;
  // HB edge: everything the spawner did so far happens-before the child.
  race::fork(id);
  return id;
}

void FiberScheduler::cancel_survivors() {
  cancelling_ = true;
  for (auto& fiber : fibers_) {
    if (fiber->state != detail::FiberState::kBlocked) continue;
    fiber->state = detail::FiberState::kReady;
    ready_.push_back(fiber->id);
  }
}

void FiberScheduler::run() {
  if (main_tsan_fiber_ == nullptr) main_tsan_fiber_ = tsan_this_fiber();
  while (finished_ < fibers_.size()) {
    if (pending_exception_ && !cancelling_) {
      // A fiber raised: unwind everyone else, then rethrow below.
      cancel_survivors();
    }
    if (ready_.empty()) {
      if (!cancelling_ && stall_handler_) {
        // Quiescence: every live fiber is blocked (it released its clock on
        // the way into block()), so the stall handler's repairs are ordered
        // after everything those fibers did.
        for (const auto& f : fibers_) race::acquire("fiber.state", f->id);
        if (stall_handler_() && !ready_.empty()) continue;
      }
      if (!cancelling_) {
        deadlock_message_ = deadlock_report();
        cancel_survivors();
      }
      if (ready_.empty()) break;  // nothing left that can be unwound
    }
    const int id = pop_ready();
    detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(id)];
    if (fiber.state == detail::FiberState::kFinished) continue;
    if (cancelling_ && !fiber.started) {
      // Never entered: no stack to unwind, retire in place.
      fiber.state = detail::FiberState::kFinished;
      ++finished_;
      continue;
    }
    fiber.state = detail::FiberState::kRunning;
    fiber.started = true;
    current_ = id;
    ++switches_;
    // ChamProf: the single-threaded scheduler is shard 0 of the telemetry
    // (bind_worker_shard defaults to 0), so dispatch timing and the
    // sampler-visible fiber/phase snapshot use the same slot layout.
    prof::Profiler* prof = prof::profiler();
    prof::ShardSlot* slot = nullptr;
    double t_dispatch = 0.0;
    if (prof != nullptr) {
      prof->bind_shards(1);
      slot = &prof->slot(0);
      t_dispatch = prof::host_seconds();
      slot->cur_fiber.store(id, std::memory_order_relaxed);
      slot->cur_phase.store(static_cast<std::uint8_t>(prof::Phase::kEngine),
                            std::memory_order_relaxed);
    }
    obs::Timeline* tl = obs::timeline();
    if (tl != nullptr)
      tl->begin(obs::Timeline::kSchedulerTid, "rank " + std::to_string(id),
                "fiber");
    race::set_task(id);
    // A fiber's open PhaseScopes live on its stack and may straddle this
    // dispatch: park the scheduler's own chain, attach the fiber's, and
    // swap back afterwards so scopes never chain across fibers and the
    // blocked-out interval is excluded from the fiber's phase times.
    prof::PhaseScope* sched_scopes = prof::PhaseScope::suspend();
    prof::PhaseScope::resume(fiber.phase_top);
    sanitizer_pre_switch(&main_sanitizer_stack_, fiber.stack.get(),
                         fiber.stack_bytes);
    tsan_switch(fiber.tsan_fiber);
    CHAM_CHECK(swapcontext(&main_context_, &fiber.context) == 0);
    sanitizer_post_switch(main_sanitizer_stack_, nullptr, nullptr);
    fiber.phase_top = prof::PhaseScope::suspend();
    prof::PhaseScope::resume(sched_scopes);
    if (fiber.state == detail::FiberState::kFinished) {
      // The fiber just retired on this switch: publish its final clock for
      // the join-all edge below (the analyzer still attributes this to the
      // fiber — set_task(-1) has not run yet).
      race::release("fiber.state", static_cast<std::uint64_t>(id));
    }
    race::set_task(-1);
    if (tl != nullptr) tl->end(obs::Timeline::kSchedulerTid);
    if (slot != nullptr) {
      slot->dispatch_seconds += prof::host_seconds() - t_dispatch;
      ++slot->dispatches;
      slot->cur_fiber.store(-1, std::memory_order_relaxed);
      slot->cur_phase.store(static_cast<std::uint8_t>(prof::Phase::kIdle),
                            std::memory_order_relaxed);
    }
    current_ = -1;
    if (fiber.state == detail::FiberState::kRunning) {
      // The fiber yielded cooperatively: still runnable.
      fiber.state = detail::FiberState::kReady;
      ready_.push_back(id);
    }
  }
  // Join-all: run() returning means every fiber's work happens-before the
  // caller's post-run reads (trace extraction, report rendering).
  for (const auto& f : fibers_) race::acquire("fiber.state", f->id);
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  if (!deadlock_message_.empty()) {
    throw DeadlockError(deadlock_message_);
  }
}

void FiberScheduler::yield() {
  CHAM_CHECK(current_ >= 0);
  if (cancelling_) throw detail::FiberCancelled{};
  switch_to_scheduler();
  if (cancelling_) throw detail::FiberCancelled{};
}

void FiberScheduler::block(std::string reason) {
  CHAM_CHECK(current_ >= 0);
  if (cancelling_) throw detail::FiberCancelled{};
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(current_)];
  fiber.state = detail::FiberState::kBlocked;
  fiber.block_reason = std::move(reason);
  // Publish this fiber's clock: stall-handler repairs and the final join
  // are ordered after everything it did before blocking.
  race::release("fiber.state", static_cast<std::uint64_t>(current_));
  switch_to_scheduler();
  // Whoever woke us released "fiber.wake" first; join their clock so their
  // writes (e.g. the delivered message) are ordered before our reads.
  race::acquire("fiber.wake", static_cast<std::uint64_t>(current_));
  if (cancelling_) throw detail::FiberCancelled{};
}

void FiberScheduler::exit_current() {
  CHAM_CHECK_MSG(current_ >= 0, "exit_current must be called from a fiber");
  throw detail::FiberCancelled{};
}

void FiberScheduler::unblock(int id) {
  CHAM_CHECK(id >= 0 && id < static_cast<int>(fibers_.size()));
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(id)];
  if (fiber.state != detail::FiberState::kBlocked) return;
  fiber.state = detail::FiberState::kReady;
  fiber.block_reason.clear();
  // Only a real kBlocked->kReady transition carries an HB edge; a spurious
  // unblock of a running fiber must not order anything.
  race::release("fiber.wake", static_cast<std::uint64_t>(id));
  ready_.push_back(id);
}

bool FiberScheduler::finished(int id) const {
  return fibers_.at(static_cast<std::size_t>(id))->state ==
         detail::FiberState::kFinished;
}

bool FiberScheduler::blocked(int id) const {
  return fibers_.at(static_cast<std::size_t>(id))->state ==
         detail::FiberState::kBlocked;
}

std::string FiberScheduler::block_note(int id) const {
  return fibers_.at(static_cast<std::size_t>(id))->block_reason;
}

void FiberScheduler::switch_to_scheduler() {
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(current_)];
  sanitizer_pre_switch(&fiber.sanitizer_stack, main_stack_bottom_,
                       main_stack_size_);
  tsan_switch(main_tsan_fiber_);
  CHAM_CHECK(swapcontext(&fiber.context, &main_context_) == 0);
  sanitizer_post_switch(fiber.sanitizer_stack, nullptr, nullptr);
}

int FiberScheduler::pop_ready() {
  std::size_t pick = 0;
  if (rng_ && ready_.size() > 1)
    pick = static_cast<std::size_t>(rng_->next_below(ready_.size()));
  const int id = ready_[pick];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(pick));
  return id;
}

std::string FiberScheduler::deadlock_report() const {
  std::ostringstream os;
  os << "minimpi deadlock: " << fibers_.size() - finished_
     << " fibers alive but none runnable\n";
  std::size_t listed = 0;
  for (const auto& fiber : fibers_) {
    if (fiber->state != detail::FiberState::kBlocked) continue;
    if (++listed > 16) {
      os << "  ...\n";
      break;
    }
    os << "  rank " << fiber->id << ": " << fiber->block_reason << '\n';
  }
  return os.str();
}

}  // namespace cham::sim
