#include "sim/fiber.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/timeline.hpp"
#include "support/logging.hpp"

// AddressSanitizer tracks one stack per thread; ucontext switches move
// execution to a different stack behind its back, so every switch must be
// announced via the fiber annotations — otherwise exception unwinding on a
// fiber stack (__asan_handle_no_return) produces false positives.
#if defined(__SANITIZE_ADDRESS__)
#define CHAM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CHAM_ASAN_FIBERS 1
#endif
#endif

#if defined(CHAM_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace {

/// Announce a switch away from the current stack onto [bottom, bottom+size).
/// `save` receives the departing context's fake-stack handle (nullptr when
/// the departing context is about to die).
inline void sanitizer_pre_switch(void** save, const void* bottom,
                                 std::size_t size) {
#if defined(CHAM_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}

/// Complete a switch: `restore` is the handle saved when the now-current
/// context last departed (nullptr on first entry); the out-params receive
/// the bounds of the stack we came from.
inline void sanitizer_post_switch(void* restore, const void** old_bottom,
                                  std::size_t* old_size) {
#if defined(CHAM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(restore, old_bottom, old_size);
#else
  (void)restore;
  (void)old_bottom;
  (void)old_size;
#endif
}

}  // namespace

namespace cham::sim {

namespace detail {

Fiber::Fiber(std::size_t bytes, std::function<void()> fn)
    : stack(new char[bytes]), stack_bytes(bytes), entry(std::move(fn)) {}

}  // namespace detail

void FiberScheduler::trampoline(unsigned hi, unsigned lo) {
  auto* fiber = reinterpret_cast<detail::Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  FiberScheduler* sched = fiber->scheduler;
  // First time on this stack; the stack we came from is the scheduler's.
  sanitizer_post_switch(nullptr, &sched->main_stack_bottom_,
                        &sched->main_stack_size_);
  try {
    fiber->entry();
  } catch (const detail::FiberCancelled&) {
    // Deliberate unwind during cancellation; not an application error.
  } catch (...) {
    if (!sched->pending_exception_)
      sched->pending_exception_ = std::current_exception();
  }
  fiber->state = detail::FiberState::kFinished;
  ++sched->finished_;
  // Falling off the trampoline returns to uc_link (the scheduler context).
  // This stack is dying: release its fake stack (nullptr save slot).
  sanitizer_pre_switch(nullptr, sched->main_stack_bottom_,
                       sched->main_stack_size_);
}

int FiberScheduler::spawn(std::function<void()> entry,
                          std::size_t stack_bytes) {
  CHAM_CHECK_MSG(current_ == -1, "spawn must be called outside fibers");
  auto fiber = std::make_unique<detail::Fiber>(stack_bytes, std::move(entry));
  fiber->id = static_cast<int>(fibers_.size());
  fiber->scheduler = this;

  CHAM_CHECK(getcontext(&fiber->context) == 0);
  fiber->context.uc_stack.ss_sp = fiber->stack.get();
  fiber->context.uc_stack.ss_size = fiber->stack_bytes;
  fiber->context.uc_link = &main_context_;
  const auto ptr = reinterpret_cast<std::uintptr_t>(fiber.get());
  makecontext(&fiber->context, reinterpret_cast<void (*)()>(&trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));

  ready_.push_back(fiber->id);
  fibers_.push_back(std::move(fiber));
  return fibers_.back()->id;
}

void FiberScheduler::cancel_survivors() {
  cancelling_ = true;
  for (auto& fiber : fibers_) {
    if (fiber->state != detail::FiberState::kBlocked) continue;
    fiber->state = detail::FiberState::kReady;
    ready_.push_back(fiber->id);
  }
}

void FiberScheduler::run() {
  while (finished_ < fibers_.size()) {
    if (pending_exception_ && !cancelling_) {
      // A fiber raised: unwind everyone else, then rethrow below.
      cancel_survivors();
    }
    if (ready_.empty()) {
      if (!cancelling_ && stall_handler_ && stall_handler_() &&
          !ready_.empty()) {
        continue;
      }
      if (!cancelling_) {
        deadlock_message_ = deadlock_report();
        cancel_survivors();
      }
      if (ready_.empty()) break;  // nothing left that can be unwound
    }
    const int id = ready_.front();
    ready_.pop_front();
    detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(id)];
    if (fiber.state == detail::FiberState::kFinished) continue;
    if (cancelling_ && !fiber.started) {
      // Never entered: no stack to unwind, retire in place.
      fiber.state = detail::FiberState::kFinished;
      ++finished_;
      continue;
    }
    fiber.state = detail::FiberState::kRunning;
    fiber.started = true;
    current_ = id;
    ++switches_;
    obs::Timeline* tl = obs::timeline();
    if (tl != nullptr)
      tl->begin(obs::Timeline::kSchedulerTid, "rank " + std::to_string(id),
                "fiber");
    sanitizer_pre_switch(&main_sanitizer_stack_, fiber.stack.get(),
                         fiber.stack_bytes);
    CHAM_CHECK(swapcontext(&main_context_, &fiber.context) == 0);
    sanitizer_post_switch(main_sanitizer_stack_, nullptr, nullptr);
    if (tl != nullptr) tl->end(obs::Timeline::kSchedulerTid);
    current_ = -1;
    if (fiber.state == detail::FiberState::kRunning) {
      // The fiber yielded cooperatively: still runnable.
      fiber.state = detail::FiberState::kReady;
      ready_.push_back(id);
    }
  }
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  if (!deadlock_message_.empty()) {
    throw DeadlockError(deadlock_message_);
  }
}

void FiberScheduler::yield() {
  CHAM_CHECK(current_ >= 0);
  if (cancelling_) throw detail::FiberCancelled{};
  switch_to_scheduler();
  if (cancelling_) throw detail::FiberCancelled{};
}

void FiberScheduler::block(std::string reason) {
  CHAM_CHECK(current_ >= 0);
  if (cancelling_) throw detail::FiberCancelled{};
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(current_)];
  fiber.state = detail::FiberState::kBlocked;
  fiber.block_reason = std::move(reason);
  switch_to_scheduler();
  if (cancelling_) throw detail::FiberCancelled{};
}

void FiberScheduler::exit_current() {
  CHAM_CHECK_MSG(current_ >= 0, "exit_current must be called from a fiber");
  throw detail::FiberCancelled{};
}

void FiberScheduler::unblock(int id) {
  CHAM_CHECK(id >= 0 && id < static_cast<int>(fibers_.size()));
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(id)];
  if (fiber.state != detail::FiberState::kBlocked) return;
  fiber.state = detail::FiberState::kReady;
  fiber.block_reason.clear();
  ready_.push_back(id);
}

bool FiberScheduler::finished(int id) const {
  return fibers_.at(static_cast<std::size_t>(id))->state ==
         detail::FiberState::kFinished;
}

bool FiberScheduler::blocked(int id) const {
  return fibers_.at(static_cast<std::size_t>(id))->state ==
         detail::FiberState::kBlocked;
}

const std::string& FiberScheduler::block_note(int id) const {
  return fibers_.at(static_cast<std::size_t>(id))->block_reason;
}

void FiberScheduler::switch_to_scheduler() {
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(current_)];
  sanitizer_pre_switch(&fiber.sanitizer_stack, main_stack_bottom_,
                       main_stack_size_);
  CHAM_CHECK(swapcontext(&fiber.context, &main_context_) == 0);
  sanitizer_post_switch(fiber.sanitizer_stack, nullptr, nullptr);
}

std::string FiberScheduler::deadlock_report() const {
  std::ostringstream os;
  os << "minimpi deadlock: " << fibers_.size() - finished_
     << " fibers alive but none runnable\n";
  std::size_t listed = 0;
  for (const auto& fiber : fibers_) {
    if (fiber->state != detail::FiberState::kBlocked) continue;
    if (++listed > 16) {
      os << "  ...\n";
      break;
    }
    os << "  rank " << fiber->id << ": " << fiber->block_reason << '\n';
  }
  return os.str();
}

}  // namespace cham::sim
