#include "sim/fiber.hpp"

#include <sstream>
#include <stdexcept>

#include "support/logging.hpp"

namespace cham::sim {

namespace detail {

Fiber::Fiber(std::size_t bytes, std::function<void()> fn)
    : stack(new char[bytes]), stack_bytes(bytes), entry(std::move(fn)) {}

}  // namespace detail

void FiberScheduler::trampoline(unsigned hi, unsigned lo) {
  auto* fiber = reinterpret_cast<detail::Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  FiberScheduler* sched = fiber->scheduler;
  try {
    fiber->entry();
  } catch (...) {
    if (!sched->pending_exception_)
      sched->pending_exception_ = std::current_exception();
  }
  fiber->state = detail::FiberState::kFinished;
  ++sched->finished_;
  // Falling off the trampoline returns to uc_link (the scheduler context).
}

int FiberScheduler::spawn(std::function<void()> entry,
                          std::size_t stack_bytes) {
  CHAM_CHECK_MSG(current_ == -1, "spawn must be called outside fibers");
  auto fiber = std::make_unique<detail::Fiber>(stack_bytes, std::move(entry));
  fiber->id = static_cast<int>(fibers_.size());
  fiber->scheduler = this;

  CHAM_CHECK(getcontext(&fiber->context) == 0);
  fiber->context.uc_stack.ss_sp = fiber->stack.get();
  fiber->context.uc_stack.ss_size = fiber->stack_bytes;
  fiber->context.uc_link = &main_context_;
  const auto ptr = reinterpret_cast<std::uintptr_t>(fiber.get());
  makecontext(&fiber->context, reinterpret_cast<void (*)()>(&trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));

  ready_.push_back(fiber->id);
  fibers_.push_back(std::move(fiber));
  return fibers_.back()->id;
}

void FiberScheduler::run() {
  while (finished_ < fibers_.size()) {
    if (ready_.empty()) {
      if (pending_exception_) break;  // a fiber died; report that instead
      if (stall_handler_ && stall_handler_() && !ready_.empty()) continue;
      throw std::runtime_error(deadlock_report());
    }
    const int id = ready_.front();
    ready_.pop_front();
    detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(id)];
    if (fiber.state == detail::FiberState::kFinished) continue;
    fiber.state = detail::FiberState::kRunning;
    current_ = id;
    ++switches_;
    CHAM_CHECK(swapcontext(&main_context_, &fiber.context) == 0);
    current_ = -1;
    if (pending_exception_) break;
    if (fiber.state == detail::FiberState::kRunning) {
      // The fiber yielded cooperatively: still runnable.
      fiber.state = detail::FiberState::kReady;
      ready_.push_back(id);
    }
  }
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void FiberScheduler::yield() {
  CHAM_CHECK(current_ >= 0);
  switch_to_scheduler();
}

void FiberScheduler::block(std::string reason) {
  CHAM_CHECK(current_ >= 0);
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(current_)];
  fiber.state = detail::FiberState::kBlocked;
  fiber.block_reason = std::move(reason);
  switch_to_scheduler();
}

void FiberScheduler::unblock(int id) {
  CHAM_CHECK(id >= 0 && id < static_cast<int>(fibers_.size()));
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(id)];
  if (fiber.state != detail::FiberState::kBlocked) return;
  fiber.state = detail::FiberState::kReady;
  fiber.block_reason.clear();
  ready_.push_back(id);
}

void FiberScheduler::switch_to_scheduler() {
  detail::Fiber& fiber = *fibers_[static_cast<std::size_t>(current_)];
  CHAM_CHECK(swapcontext(&fiber.context, &main_context_) == 0);
}

std::string FiberScheduler::deadlock_report() const {
  std::ostringstream os;
  os << "minimpi deadlock: " << fibers_.size() - finished_
     << " fibers alive but none runnable\n";
  std::size_t listed = 0;
  for (const auto& fiber : fibers_) {
    if (fiber->state != detail::FiberState::kBlocked) continue;
    if (++listed > 16) {
      os << "  ...\n";
      break;
    }
    os << "  rank " << fiber->id << ": " << fiber->block_reason << '\n';
  }
  return os.str();
}

}  // namespace cham::sim
