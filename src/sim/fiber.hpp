// Cooperative fibers (ucontext) and a deterministic round-robin scheduler.
//
// Every simulated MPI rank runs as one fiber on the host thread. Scheduling
// is strictly deterministic: ready fibers run in FIFO order, so a given
// (workload, P, seed) triple always produces the identical interleaving and
// therefore bit-identical traces. set_seed installs a seeded shuffle of the
// ready queue instead — still reproducible per seed, used by the ChamRace
// determinism auditor to prove protocol output is schedule-independent.
// Blocking MPI semantics map to block()/unblock(); a drained ready-queue
// with live fibers is a deadlock: the scheduler captures per-fiber
// diagnostics, unwinds every surviving fiber stack (so destructors run and
// nothing leaks), and throws DeadlockError instead of hanging.
//
// The scheduler is also the source of ChamRace's happens-before edges
// (docs/RACE.md): spawn forks the child's clock, block/unblock and the
// stall-handler quiescence are modelled as sync objects, and every context
// switch announces the new task. Under -fsanitize=thread the ucontext
// switches are additionally announced through the TSan fiber API so the
// pilot thread-pool tests can run fiber code under TSan.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace cham::obs::prof {
class PhaseScope;
}  // namespace cham::obs::prof

namespace cham::sim {

class FiberScheduler;

namespace detail {

enum class FiberState : std::uint8_t { kReady, kRunning, kBlocked, kFinished };

/// Thrown inside a fiber to force a clean stack unwind during cancellation.
/// Deliberately not derived from std::exception so application-level
/// `catch (const std::exception&)` handlers cannot swallow it.
struct FiberCancelled {};

struct Fiber {
  Fiber(std::size_t stack_bytes, std::function<void()> entry);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  ucontext_t context{};
  std::unique_ptr<char[]> stack;
  std::size_t stack_bytes;
  std::function<void()> entry;
  FiberState state = FiberState::kReady;
  int id = -1;
  bool started = false;  ///< context entered at least once
  FiberScheduler* scheduler = nullptr;
  /// Human-readable note set by the blocker (for deadlock reports).
  std::string block_reason;
  /// ASan fake-stack handle saved across switches away from this fiber.
  void* sanitizer_stack = nullptr;
  /// TSan fiber handle (null unless built with -fsanitize=thread).
  void* tsan_fiber = nullptr;
  /// Open ChamProf scope chain, parked while the fiber is switched out
  /// (the scopes live on this fiber's stack; see PhaseScope::suspend).
  obs::prof::PhaseScope* phase_top = nullptr;
};

}  // namespace detail

class FiberScheduler final : public Scheduler {
 public:
  FiberScheduler() = default;

  /// Create a fiber; it becomes runnable immediately. Returns its id
  /// (dense, starting at 0 — used as the MPI rank).
  int spawn(std::function<void()> entry, std::size_t stack_bytes) override;

  /// Drive all fibers to completion. Rethrows the first exception a fiber
  /// raised. Throws DeadlockError on deadlock — in both cases only after
  /// every remaining fiber stack has been unwound (destructors run).
  void run() override;

  /// Installed handler is consulted when no fiber is runnable but some are
  /// still alive; returning true means it unblocked something and the run
  /// continues, false falls through to the deadlock report. Used by the
  /// replayer to degrade gracefully on imperfectly clustered traces.
  void set_stall_handler(std::function<bool()> handler) override {
    stall_handler_ = std::move(handler);
  }

  /// Seed != 0 replaces FIFO dispatch with a seeded uniform pick from the
  /// ready queue (reproducible per seed). Seed 0 restores exact FIFO.
  /// Used by the determinism auditor; call before run().
  void set_seed(std::uint64_t seed) override {
    if (seed == 0)
      rng_.reset();
    else
      rng_.emplace(seed);
  }

  /// --- called from inside a fiber ---

  /// Yield but stay runnable (appended to the back of the ready queue).
  void yield() override;

  /// Mark the current fiber blocked and switch away. Returns once some
  /// other fiber calls unblock() on it.
  void block(std::string reason) override;

  /// Make a blocked fiber runnable again. No-op if it is not blocked.
  void unblock(int id) override;

  /// Terminate the calling fiber immediately by unwinding its stack (the
  /// same FiberCancelled path cancellation uses; destructors run, the
  /// trampoline retires the fiber). Used to kill a single rank — e.g. an
  /// injected crash — without disturbing the others.
  [[noreturn]] void exit_current() override;

  /// Id of the fiber currently executing; -1 when in the scheduler itself.
  [[nodiscard]] int current() const override { return current_; }

  [[nodiscard]] std::size_t fiber_count() const override {
    return fibers_.size();
  }
  [[nodiscard]] std::size_t finished_count() const override {
    return finished_;
  }

  /// Introspection for analysis tools: fiber lifecycle state and the
  /// blocker's note (empty unless blocked).
  [[nodiscard]] bool finished(int id) const override;
  [[nodiscard]] bool blocked(int id) const override;
  [[nodiscard]] std::string block_note(int id) const override;

  /// Total fiber context switches performed (diagnostics).
  [[nodiscard]] std::uint64_t switch_count() const override {
    return switches_;
  }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void switch_to_scheduler();
  /// Next fiber to dispatch: FIFO, or a seeded pick when set_seed is active.
  int pop_ready();
  /// Enter cancellation: every surviving fiber is resumed one last time and
  /// unwound via FiberCancelled (never-started fibers are retired in place).
  void cancel_survivors();
  [[nodiscard]] std::string deadlock_report() const;

  std::vector<std::unique_ptr<detail::Fiber>> fibers_;
  std::deque<int> ready_;
  ucontext_t main_context_{};
  /// ASan bookkeeping for the scheduler's own (thread) stack.
  void* main_sanitizer_stack_ = nullptr;
  /// TSan handle for the scheduler's own context (thread fiber).
  void* main_tsan_fiber_ = nullptr;
  std::optional<support::Rng> rng_;
  const void* main_stack_bottom_ = nullptr;
  std::size_t main_stack_size_ = 0;
  int current_ = -1;
  std::size_t finished_ = 0;
  std::uint64_t switches_ = 0;
  bool cancelling_ = false;
  std::string deadlock_message_;
  std::exception_ptr pending_exception_;
  std::function<bool()> stall_handler_;
};

}  // namespace cham::sim
