#include "sim/shard.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "analysis/race/annotate.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/timeline.hpp"
#include "sim/context.hpp"
#include "sim/fiber.hpp"  // detail::FiberCancelled (shared unwind token)
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace cham::sim {

namespace prof = obs::prof;

using detail::sanitizer_post_switch;
using detail::sanitizer_pre_switch;
using detail::ShardFiber;
using detail::ShardFiberState;
using detail::tsan_free_fiber;
using detail::tsan_make_fiber;
using detail::tsan_switch;
using detail::tsan_this_fiber;

namespace {

/// Fiber id executing on *this* thread (-1 in scheduler/planner code).
/// Thread-local so every shard worker — and the engine's log-rank provider
/// running on it — sees only its own fiber.
thread_local int tls_current_fiber = -1;

}  // namespace

namespace detail {

ShardFiber::ShardFiber(std::size_t bytes, std::function<void()> fn)
    : stack(new char[bytes]), stack_bytes(bytes), entry(std::move(fn)) {}

ShardFiber::~ShardFiber() { tsan_free_fiber(tsan_fiber); }

}  // namespace detail

ShardedScheduler::ShardedScheduler(int nthreads) {
  CHAM_CHECK_MSG(nthreads >= 1, "need at least one shard");
  shards_.reserve(static_cast<std::size_t>(nthreads));
  for (int s = 0; s < nthreads; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

ShardedScheduler::~ShardedScheduler() {
  // run() joins its workers before returning; a ShardedScheduler destroyed
  // without run() has no threads.
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

int ShardedScheduler::spawn(std::function<void()> entry,
                            std::size_t stack_bytes) {
  CHAM_CHECK_MSG(!ran_, "spawn must precede run()");
  auto fiber = std::make_unique<ShardFiber>(stack_bytes, std::move(entry));
  fiber->id = static_cast<int>(fibers_.size());
  fiber->shard = fiber->id % static_cast<int>(shards_.size());
  fiber->sched = this;

  Shard& shard = *shards_[static_cast<std::size_t>(fiber->shard)];
  CHAM_CHECK(getcontext(&fiber->context) == 0);
  fiber->context.uc_stack.ss_sp = fiber->stack.get();
  fiber->context.uc_stack.ss_size = fiber->stack_bytes;
  // uc_link points at the owning shard's scheduler context; its contents
  // are (re)written by every swapcontext on the shard's worker thread, so
  // taking the address before that thread exists is safe.
  fiber->context.uc_link = &shard.main_context;
  const auto ptr = reinterpret_cast<std::uintptr_t>(fiber.get());
  makecontext(&fiber->context, reinterpret_cast<void (*)()>(&trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
  fiber->tsan_fiber = tsan_make_fiber();

  shard.ready.push_back(fiber->id);
  fibers_.push_back(std::move(fiber));
  const int id = fibers_.back()->id;
  race::fork(id);
  return id;
}

void ShardedScheduler::trampoline(unsigned hi, unsigned lo) {
  auto* fiber = reinterpret_cast<ShardFiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  ShardedScheduler* sched = fiber->sched;
  Shard& shard = *sched->shards_[static_cast<std::size_t>(fiber->shard)];
  // First time on this stack; the stack we came from is the shard worker's.
  sanitizer_post_switch(nullptr, &shard.main_stack_bottom,
                        &shard.main_stack_size);
  try {
    fiber->entry();
  } catch (const detail::FiberCancelled&) {
    // Deliberate unwind during cancellation; not an application error.
  } catch (...) {
    sched->record_exception();
  }
  {
    // Cross-shard unblock() reads this fiber's state under the shard lock,
    // so the final transition must take it too.
    const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
    fiber->state = ShardFiberState::kFinished;
  }
  sched->finished_.fetch_add(1, std::memory_order_relaxed);
  // Falling off the trampoline returns to uc_link (the shard context).
  // This stack is dying: release its fake stack (nullptr save slot).
  sanitizer_pre_switch(nullptr, shard.main_stack_bottom,
                       shard.main_stack_size);
  tsan_switch(shard.main_tsan_fiber);
}

void ShardedScheduler::record_exception() {
  const std::lock_guard<std::mutex> lock(error_m_);
  if (!pending_exception_) pending_exception_ = std::current_exception();
}

void ShardedScheduler::run() {
  CHAM_CHECK_MSG(!ran_, "ShardedScheduler::run may be called once");
  ran_ = true;
  // The scheduler owns its worker tracks: name them here so every consumer
  // (engine runs, tests, future serve jobs) gets readable Perfetto rows.
  if (obs::Timeline* tl = obs::timeline()) {
    for (std::size_t s = 1; s < shards_.size(); ++s)
      tl->set_track_name(obs::Timeline::shard_tid(static_cast<int>(s)),
                         "shard " + std::to_string(s));
  }
  if (prof::Profiler* prof = prof::profiler())
    prof->bind_shards(static_cast<int>(shards_.size()));
  for (std::size_t s = 1; s < shards_.size(); ++s)
    shards_[s]->worker =
        std::thread([this, s] { worker_loop(static_cast<int>(s)); });
  worker_loop(0);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  // Join-all: run() returning means every fiber's work happens-before the
  // caller's post-run reads (the final worker join is the real HB edge).
  for (const auto& fiber : fibers_) race::acquire("fiber.state", fiber->id);
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  if (!deadlock_message_.empty()) throw DeadlockError(deadlock_message_);
}

void ShardedScheduler::worker_loop(int shard_index) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  if (shard.main_tsan_fiber == nullptr)
    shard.main_tsan_fiber = tsan_this_fiber();
  // Rank context for log records emitted on this worker (the provider is
  // thread-local, so each worker installs — and clears — its own).
  support::set_log_rank_provider([this] { return current(); });
  prof::bind_worker_shard(shard_index);
  while (barrier_and_plan(shard_index)) run_epoch(shard_index);
  prof::bind_worker_shard(0);
  support::set_log_rank_provider(nullptr);
}

bool ShardedScheduler::barrier_and_plan(int shard_index) {
  prof::Profiler* prof = prof::profiler();
  const double t_arrive = prof != nullptr ? prof::host_seconds() : 0.0;
  std::unique_lock<std::mutex> lock(coord_m_);
  if (++coord_waiting_ == static_cast<int>(shards_.size())) {
    // Last arriver plans the next epoch while everyone else is parked: it
    // has exclusive access to all shard and engine state. The lock chain
    // through coord_m_ (each worker locked it on arrival, after its last
    // fiber write) is the happens-before edge that makes the planner's
    // cross-shard reads — vtimes, queues, the stall handler — race-free.
    if (prof != nullptr) {
      // Slot writes are exclusive: this thread owns its slot and every
      // other worker is parked on the barrier.
      prof::ShardSlot& slot = prof->slot(shard_index);
      const double t_plan = prof::host_seconds();
      slot.barrier_wait_seconds += t_plan - t_arrive;  // coord_m_ acquire
      plan_epoch();
      slot.plan_seconds += prof::host_seconds() - t_plan;
      ++slot.epochs_planned;
    } else {
      plan_epoch();
    }
    coord_waiting_ = 0;
    ++coord_gen_;
    coord_cv_.notify_all();
  } else {
    const std::uint64_t gen = coord_gen_;
    coord_cv_.wait(lock, [&] { return coord_gen_ != gen; });
    if (prof != nullptr)
      prof->slot(shard_index).barrier_wait_seconds +=
          prof::host_seconds() - t_arrive;
  }
  return !done_;
}

void ShardedScheduler::start_cancel() {
  cancelling_.store(true, std::memory_order_release);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
    for (auto& fiber : fibers_) {
      if (static_cast<std::size_t>(fiber->shard) != s) continue;
      if (fiber->state != ShardFiberState::kBlocked) continue;
      fiber->state = ShardFiberState::kReady;
      shard.ready.push_back(fiber->id);
    }
  }
}

void ShardedScheduler::plan_epoch() {
  while (true) {
    // Merge / inspect every shard's ready set. Sorting by id makes the
    // epoch's run order independent of the (thread-timing dependent) order
    // in which wake-ups arrived.
    std::size_t total_ready = 0;
    double t_min = std::numeric_limits<double>::infinity();
    for (auto& shard : shards_) {
      const prof::TimedLockGuard lock(shard->m, prof::LockClass::kShardQueue);
      std::sort(shard->ready.begin(), shard->ready.end());
      for (const int id : shard->ready)
        t_min = std::min(t_min, fiber_vtime(id));
      total_ready += shard->ready.size();
    }

    if (total_ready == 0) {
      if (finished_.load(std::memory_order_acquire) == fibers_.size()) {
        done_ = true;
        return;
      }
      if (!cancelling_.load(std::memory_order_relaxed)) {
        {
          const std::lock_guard<std::mutex> lock(error_m_);
          if (pending_exception_) {
            start_cancel();
            continue;
          }
        }
        if (stall_handler_) {
          // Quiescence: every live fiber is parked (its worker is waiting
          // on the barrier), so the handler's repairs are ordered after
          // everything those fibers did.
          for (const auto& fiber : fibers_)
            race::acquire("fiber.state", fiber->id);
          race::set_task(-1);
          if (stall_handler_()) continue;
        }
        deadlock_message_ = deadlock_report();
        start_cancel();
        continue;
      }
      // Cancelling with nothing ready and fibers unaccounted for cannot
      // happen (start_cancel readies every blocked fiber; running fibers
      // requeue or finish) — but never hang if it somehow does.
      done_ = true;
      return;
    }

    {
      const std::lock_guard<std::mutex> lock(error_m_);
      if (pending_exception_ &&
          !cancelling_.load(std::memory_order_relaxed)) {
        start_cancel();
        continue;
      }
    }

    // Window selection: everything at [t_min, t_min + horizon] runs now;
    // later fibers wait for a future epoch. Cancellation overrides the
    // window so every survivor unwinds promptly.
    const bool cancel = cancelling_.load(std::memory_order_relaxed);
    const double limit = horizon_ < 0.0
                             ? std::numeric_limits<double>::infinity()
                             : t_min + horizon_;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
      shard.run_list.clear();
      auto keep = shard.ready.begin();
      for (const int id : shard.ready) {
        if (cancel || fiber_vtime(id) <= limit)
          shard.run_list.push_back(id);
        else
          *keep++ = id;
      }
      shard.ready.erase(keep, shard.ready.end());
      if (seed_ != 0 && shard.run_list.size() > 1) {
        // Deterministic per (seed, shard, epoch) — independent of thread
        // timing, reproducible across runs and thread counts with the same
        // shard count.
        support::Rng rng(support::mix64(
            seed_ ^ support::mix64((epochs_ << 8) | (s + 1))));
        for (std::size_t i = shard.run_list.size() - 1; i > 0; --i) {
          const auto j =
              static_cast<std::size_t>(rng.next_below(i + 1));
          std::swap(shard.run_list[i], shard.run_list[j]);
        }
      }
    }
    if (prof::Profiler* prof = prof::profiler()) {
      // Ready-queue depth per shard for this epoch (run list + deferred).
      // Plain reads: every worker is parked, ordered through coord_m_.
      std::vector<std::uint32_t> depth(shards_.size());
      for (std::size_t s = 0; s < shards_.size(); ++s)
        depth[s] = static_cast<std::uint32_t>(shards_[s]->run_list.size() +
                                              shards_[s]->ready.size());
      prof->note_epoch(epochs_ + 1, depth);
    }
    ++epochs_;
    return;
  }
}

void ShardedScheduler::run_epoch(int shard_index) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  std::vector<int> list;
  {
    const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
    list.swap(shard.run_list);
  }
  for (const int id : list) {
    ShardFiber& fiber = *fibers_[static_cast<std::size_t>(id)];
    bool runnable = false;
    bool retired_in_place = false;
    {
      const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
      if (fiber.state == ShardFiberState::kReady) {
        if (cancelling_.load(std::memory_order_relaxed) && !fiber.started) {
          // Never entered: no stack to unwind, retire in place.
          fiber.state = ShardFiberState::kFinished;
          retired_in_place = true;
        } else {
          fiber.state = ShardFiberState::kRunning;
          fiber.block_reason.clear();
          fiber.started = true;
          runnable = true;
        }
      }
    }
    if (retired_in_place) finished_.fetch_add(1, std::memory_order_relaxed);
    if (!runnable) continue;
    dispatch(shard_index, fiber);
    bool retired = false;
    {
      const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
      if (fiber.state == ShardFiberState::kRunning) {
        // The fiber yielded cooperatively: still runnable next epoch.
        fiber.state = ShardFiberState::kReady;
        shard.ready.push_back(id);
      }
      retired = fiber.state == ShardFiberState::kFinished;
    }
    if (retired) {
      // Publish the retiree's final clock for the join-all edge.
      race::release("fiber.state", static_cast<std::uint64_t>(id));
    }
  }
}

void ShardedScheduler::dispatch(int shard_index, ShardFiber& fiber) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  tls_current_fiber = fiber.id;
  ++shard.switches;
  // Dispatch timing + the sampler-visible snapshot (relaxed atomics: the
  // ticker thread only needs *some* recent value, never ordering).
  prof::Profiler* prof = prof::profiler();
  prof::ShardSlot* slot = nullptr;
  double t_dispatch = 0.0;
  if (prof != nullptr) {
    slot = &prof->slot(shard_index);
    t_dispatch = prof::host_seconds();
    slot->cur_fiber.store(fiber.id, std::memory_order_relaxed);
    slot->cur_phase.store(static_cast<std::uint8_t>(prof::Phase::kEngine),
                          std::memory_order_relaxed);
  }
  obs::Timeline* tl = obs::timeline();
  if (tl != nullptr)
    tl->begin(obs::Timeline::shard_tid(shard_index),
              "rank " + std::to_string(fiber.id), "fiber");
  race::set_task(fiber.id);
  // A fiber's open PhaseScopes live on its stack and may straddle this
  // dispatch: park the worker's own chain, attach the fiber's, and swap
  // back afterwards so scopes never chain across fibers and the
  // blocked-out interval is excluded from the fiber's phase times.
  prof::PhaseScope* worker_scopes = prof::PhaseScope::suspend();
  prof::PhaseScope::resume(fiber.phase_top);
  sanitizer_pre_switch(&shard.main_sanitizer_stack, fiber.stack.get(),
                       fiber.stack_bytes);
  tsan_switch(fiber.tsan_fiber);
  CHAM_CHECK(swapcontext(&shard.main_context, &fiber.context) == 0);
  sanitizer_post_switch(shard.main_sanitizer_stack, nullptr, nullptr);
  fiber.phase_top = prof::PhaseScope::suspend();
  prof::PhaseScope::resume(worker_scopes);
  race::set_task(-1);
  if (tl != nullptr) tl->end(obs::Timeline::shard_tid(shard_index));
  if (slot != nullptr) {
    slot->dispatch_seconds += prof::host_seconds() - t_dispatch;
    ++slot->dispatches;
    slot->cur_fiber.store(-1, std::memory_order_relaxed);
    slot->cur_phase.store(static_cast<std::uint8_t>(prof::Phase::kIdle),
                          std::memory_order_relaxed);
  }
  tls_current_fiber = -1;
}

void ShardedScheduler::yield() {
  const int id = tls_current_fiber;
  CHAM_CHECK(id >= 0);
  if (cancelling_.load(std::memory_order_acquire))
    throw detail::FiberCancelled{};
  ShardFiber& fiber = *fibers_[static_cast<std::size_t>(id)];
  Shard& shard = *shards_[static_cast<std::size_t>(fiber.shard)];
  sanitizer_pre_switch(&fiber.sanitizer_stack, shard.main_stack_bottom,
                       shard.main_stack_size);
  tsan_switch(shard.main_tsan_fiber);
  CHAM_CHECK(swapcontext(&fiber.context, &shard.main_context) == 0);
  sanitizer_post_switch(fiber.sanitizer_stack, nullptr, nullptr);
  if (cancelling_.load(std::memory_order_acquire))
    throw detail::FiberCancelled{};
}

void ShardedScheduler::block(std::string reason) {
  const int id = tls_current_fiber;
  CHAM_CHECK(id >= 0);
  if (cancelling_.load(std::memory_order_acquire))
    throw detail::FiberCancelled{};
  ShardFiber& fiber = *fibers_[static_cast<std::size_t>(id)];
  Shard& shard = *shards_[static_cast<std::size_t>(fiber.shard)];
  {
    const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
    if (fiber.wake_pending) {
      // A wake-up raced this block: consume the token and return without
      // switching. The caller's condition loop re-checks and either
      // proceeds (the waker's work is visible — we hold the shard lock the
      // waker released) or blocks again for real.
      fiber.wake_pending = false;
      if (prof::Profiler* prof = prof::profiler())
        ++prof->slot(fiber.shard).wake_tokens;  // owner thread
      race::acquire("fiber.wake", static_cast<std::uint64_t>(id));
      return;
    }
    fiber.state = ShardFiberState::kBlocked;
    fiber.block_reason = std::move(reason);
  }
  // Publish this fiber's clock: stall-handler repairs and the final join
  // are ordered after everything it did before blocking.
  race::release("fiber.state", static_cast<std::uint64_t>(id));
  sanitizer_pre_switch(&fiber.sanitizer_stack, shard.main_stack_bottom,
                       shard.main_stack_size);
  tsan_switch(shard.main_tsan_fiber);
  CHAM_CHECK(swapcontext(&fiber.context, &shard.main_context) == 0);
  sanitizer_post_switch(fiber.sanitizer_stack, nullptr, nullptr);
  // Whoever woke us released "fiber.wake" first; join their clock so their
  // writes (e.g. the delivered message) are ordered before our reads.
  race::acquire("fiber.wake", static_cast<std::uint64_t>(id));
  if (cancelling_.load(std::memory_order_acquire))
    throw detail::FiberCancelled{};
}

void ShardedScheduler::unblock(int id) {
  CHAM_CHECK(id >= 0 && id < static_cast<int>(fibers_.size()));
  ShardFiber& fiber = *fibers_[static_cast<std::size_t>(id)];
  Shard& shard = *shards_[static_cast<std::size_t>(fiber.shard)];
  const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
  if (fiber.state == ShardFiberState::kBlocked) {
    fiber.state = ShardFiberState::kReady;
    fiber.block_reason.clear();
    race::release("fiber.wake", static_cast<std::uint64_t>(id));
    // Woken fibers join the *next* epoch: the planner merges this entry at
    // the barrier, so eligibility never depends on wake-up timing.
    shard.ready.push_back(id);
  } else if (fiber.state == ShardFiberState::kReady ||
             fiber.state == ShardFiberState::kRunning) {
    // The target is running (likely deciding to block on the condition we
    // just satisfied) or already queued: leave a token so its next block()
    // returns immediately instead of losing this wake-up.
    fiber.wake_pending = true;
    race::release("fiber.wake", static_cast<std::uint64_t>(id));
  }
}

void ShardedScheduler::exit_current() {
  CHAM_CHECK_MSG(tls_current_fiber >= 0,
                 "exit_current must be called from a fiber");
  throw detail::FiberCancelled{};
}

int ShardedScheduler::current() const { return tls_current_fiber; }

std::size_t ShardedScheduler::finished_count() const {
  return finished_.load(std::memory_order_acquire);
}

bool ShardedScheduler::finished(int id) const {
  const ShardFiber& fiber = *fibers_.at(static_cast<std::size_t>(id));
  Shard& shard = *shards_[static_cast<std::size_t>(fiber.shard)];
  const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
  return fiber.state == ShardFiberState::kFinished;
}

bool ShardedScheduler::blocked(int id) const {
  const ShardFiber& fiber = *fibers_.at(static_cast<std::size_t>(id));
  Shard& shard = *shards_[static_cast<std::size_t>(fiber.shard)];
  const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
  return fiber.state == ShardFiberState::kBlocked;
}

std::string ShardedScheduler::block_note(int id) const {
  const ShardFiber& fiber = *fibers_.at(static_cast<std::size_t>(id));
  Shard& shard = *shards_[static_cast<std::size_t>(fiber.shard)];
  const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
  return fiber.block_reason;
}

std::uint64_t ShardedScheduler::switch_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->switches;
  return total;
}

std::uint64_t ShardedScheduler::epochs() const {
  const std::lock_guard<std::mutex> lock(coord_m_);
  return epochs_;
}

std::string ShardedScheduler::deadlock_report() {
  std::ostringstream os;
  os << "minimpi deadlock: "
     << fibers_.size() - finished_.load(std::memory_order_acquire)
     << " fibers alive but none runnable\n";
  std::size_t listed = 0;
  for (const auto& fiber : fibers_) {
    Shard& shard = *shards_[static_cast<std::size_t>(fiber->shard)];
    const prof::TimedLockGuard lock(shard.m, prof::LockClass::kShardQueue);
    if (fiber->state != ShardFiberState::kBlocked) continue;
    if (++listed > 16) {
      os << "  ...\n";
      break;
    }
    os << "  rank " << fiber->id << ": " << fiber->block_reason << '\n';
  }
  return os.str();
}

}  // namespace cham::sim
