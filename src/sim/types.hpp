// Common vocabulary types for the minimpi runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cham::sim {

/// MPI rank within the world. Sub-communicators are not modelled; every
/// communicator spans the full world (sufficient for the paper's workloads).
using Rank = int;

inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Operation kinds visible to PMPI tools.
enum class Op : std::uint8_t {
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kWaitall,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAllgather,
  kAlltoall,
  kInit,
  kFinalize,
  /// Not an MPI call: a trace-level placeholder for an interval lost to a
  /// rank failure (a dead lead's unmerged partial trace). Emitted by the
  /// fault-tolerant Chameleon protocol, never observed at runtime hooks.
  kGap,
};

const char* op_name(Op op);

/// True for operations that involve every rank of the communicator.
bool op_is_collective(Op op);

/// Elementwise reduction operators over u64 vectors.
enum class ReduceOp : std::uint8_t { kSum, kMax, kMin, kBor };

/// Communicator identifiers. All communicators cover the whole world; the
/// ids let tools distinguish application traffic, the Chameleon marker
/// barrier (the paper's "unique value in the communicator field"), and the
/// tool's own control traffic (which must never be traced).
enum CommId : int {
  kCommWorld = 0,
  kCommMarker = 1,
  kCommTool = 2,
};

/// What a PMPI tool sees for one call, before and after execution.
struct CallInfo {
  /// When true the peer is a fixed rank (e.g. a master/root), not an offset
  /// from the caller — tools must encode it absolutely so that cluster
  /// transposition does not retarget it.
  bool absolute_peer = false;

  Op op = Op::kInit;
  /// Destination (sends) or source (recvs) as posted, in world ranks.
  /// kAnySource for wildcard receives; for the post hook of a wildcard
  /// receive, `matched_peer` holds the actual source.
  Rank peer = kAnySource;
  Rank matched_peer = kAnySource;
  int tag = kAnyTag;
  /// Declared transfer size in bytes (count * datatype extent).
  std::size_t bytes = 0;
  /// Actual size of the matched message (post hook of recv/wait only);
  /// analysis tools compare it against `bytes` to flag truncation.
  std::size_t matched_bytes = 0;
  int comm = kCommWorld;
  Rank root = 0;
  bool is_marker = false;

  [[nodiscard]] std::string to_string() const;
};

/// Completion information returned from receives.
struct RecvStatus {
  Rank source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  /// The posted source rank crashed: the receive completed with an empty
  /// synthetic message after the fault-tolerance timeout budget elapsed.
  bool peer_failed = false;
};

/// Outcome of a send under fault injection. Fault-free runs always return
/// kOk; callers that never inject faults may ignore it.
enum class CommResult : std::uint8_t {
  kOk,
  kPeerFailed,  ///< destination rank crashed before the send
  kLost,        ///< dropped by fault injection after exhausting retries
};

}  // namespace cham::sim
