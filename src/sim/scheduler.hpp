// Scheduler interface shared by the single-threaded FiberScheduler and the
// sharded multi-threaded ShardedScheduler (sim/shard.hpp).
//
// The engine talks to its scheduler exclusively through this interface so
// `EngineOptions::threads` can select the implementation at run() time:
// threads == 1 keeps the original FiberScheduler (byte-for-byte identical
// behaviour), threads > 1 installs the shard pool. Both implementations
// share the determinism contract: a given (workload, P, seed) triple must
// produce the identical protocol output regardless of thread count —
// docs/ENGINE.md spells out why that holds and how it is audited.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace cham::sim {

/// Thrown by Scheduler::run once every live fiber has been unwound after a
/// confirmed deadlock (no runnable fiber, stall handler exhausted).
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Scheduler {
 public:
  Scheduler() = default;
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a fiber; it becomes runnable immediately. Returns its id
  /// (dense, starting at 0 — used as the MPI rank). Must be called before
  /// run(), from the driving thread.
  virtual int spawn(std::function<void()> entry, std::size_t stack_bytes) = 0;

  /// Drive all fibers to completion. Rethrows the first exception a fiber
  /// raised. Throws DeadlockError on deadlock — in both cases only after
  /// every remaining fiber stack has been unwound (destructors run).
  virtual void run() = 0;

  /// Installed handler is consulted when no fiber is runnable but some are
  /// still alive; returning true means it unblocked something and the run
  /// continues, false falls through to the deadlock report. The handler
  /// always executes with every fiber quiescent (single-threaded: between
  /// dispatches; sharded: on the epoch-barrier planner with all workers
  /// parked), so it may freely inspect cross-rank state.
  virtual void set_stall_handler(std::function<bool()> handler) = 0;

  /// Seed != 0 replaces deterministic FIFO dispatch with a seeded shuffle
  /// (reproducible per seed). Seed 0 restores the default order. Used by
  /// the determinism auditor; call before run().
  virtual void set_seed(std::uint64_t seed) = 0;

  // --- called from inside a fiber ---

  /// Yield but stay runnable.
  virtual void yield() = 0;

  /// Mark the current fiber blocked and switch away. Returns once some
  /// other fiber calls unblock() on it. May return spuriously (the sharded
  /// scheduler turns a wake-up racing the block into an immediate return);
  /// callers must re-check their condition in a loop — every engine block
  /// site already does.
  virtual void block(std::string reason) = 0;

  /// Make a blocked fiber runnable again. Callable from any fiber or from
  /// the stall handler; the sharded scheduler accepts cross-shard calls.
  virtual void unblock(int id) = 0;

  /// Terminate the calling fiber immediately by unwinding its stack.
  [[noreturn]] virtual void exit_current() = 0;

  /// Id of the fiber currently executing on the *calling thread*; -1 when
  /// called from scheduler/planner code.
  [[nodiscard]] virtual int current() const = 0;

  [[nodiscard]] virtual std::size_t fiber_count() const = 0;
  [[nodiscard]] virtual std::size_t finished_count() const = 0;

  /// Introspection for analysis tools: fiber lifecycle state and the
  /// blocker's note (empty unless blocked). Valid when the target fiber is
  /// quiescent (stall handler, post-run) — the note is returned by value so
  /// the sharded scheduler can copy it under its shard lock.
  [[nodiscard]] virtual bool finished(int id) const = 0;
  [[nodiscard]] virtual bool blocked(int id) const = 0;
  [[nodiscard]] virtual std::string block_note(int id) const = 0;

  /// Total fiber context switches performed (diagnostics).
  [[nodiscard]] virtual std::uint64_t switch_count() const = 0;
};

}  // namespace cham::sim
