#include "sim/types.hpp"

#include <sstream>

namespace cham::sim {

const char* op_name(Op op) {
  switch (op) {
    case Op::kSend: return "MPI_Send";
    case Op::kRecv: return "MPI_Recv";
    case Op::kIsend: return "MPI_Isend";
    case Op::kIrecv: return "MPI_Irecv";
    case Op::kWait: return "MPI_Wait";
    case Op::kWaitall: return "MPI_Waitall";
    case Op::kBarrier: return "MPI_Barrier";
    case Op::kBcast: return "MPI_Bcast";
    case Op::kReduce: return "MPI_Reduce";
    case Op::kAllreduce: return "MPI_Allreduce";
    case Op::kGather: return "MPI_Gather";
    case Op::kScatter: return "MPI_Scatter";
    case Op::kAllgather: return "MPI_Allgather";
    case Op::kAlltoall: return "MPI_Alltoall";
    case Op::kInit: return "MPI_Init";
    case Op::kFinalize: return "MPI_Finalize";
    case Op::kGap: return "GAP";
  }
  return "MPI_?";
}

bool op_is_collective(Op op) {
  switch (op) {
    case Op::kBarrier:
    case Op::kBcast:
    case Op::kReduce:
    case Op::kAllreduce:
    case Op::kGather:
    case Op::kScatter:
    case Op::kAllgather:
    case Op::kAlltoall:
      return true;
    default:
      return false;
  }
}

std::string CallInfo::to_string() const {
  std::ostringstream os;
  os << op_name(op);
  if (op == Op::kSend || op == Op::kIsend) os << " dest=" << peer;
  if (op == Op::kRecv || op == Op::kIrecv) os << " src=" << peer;
  if (tag != kAnyTag) os << " tag=" << tag;
  if (bytes) os << " bytes=" << bytes;
  os << " comm=" << comm;
  if (is_marker) os << " [marker]";
  return os.str();
}

}  // namespace cham::sim
