// Deterministic fault injection for the minimpi engine.
//
// A FaultPlan is a seeded list of fault specifications — rank crashes
// (triggered at a traced-call index, at a marker number, inside a named
// call site, or at a tool-communicator operation so faults can land in the
// middle of a clustering reduction), message drops with bounded retry, and
// transient per-call slowdowns. The engine consults a FaultInjector built
// from the plan at well-defined points; given the same plan, seed and
// workload, the injected faults (and therefore the whole run) are
// bit-reproducible. With no injector installed the engine's behaviour is
// unchanged.
//
// Plans have a one-line-per-fault text form (see docs/FAULTS.md):
//
//   crash rank=3 marker=2        # die entering the 2nd marker call
//   crash rank=5 call=17         # die entering the 17th traced call
//   crash rank=2 site=phase.halo # die entering the named call site
//   crash rank=4 toolop=6        # die at the 6th tool-comm p2p operation
//   drop src=1 dest=2 prob=0.5   # drop matching sends with probability 0.5
//   slow rank=0 call=5 span=10 secs=1e-4  # +100us/call for 10 calls
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace cham::sim {

enum class FaultKind : std::uint8_t { kCrash, kDrop, kSlowdown };

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;

  /// Target rank (crash/slowdown); drop filter when kind == kDrop
  /// (kAnySource matches every sender).
  Rank rank = kAnySource;

  // --- crash / slowdown trigger (exactly one nonzero for crashes) ---
  std::uint64_t at_call = 0;    ///< 1-based traced-call index (0 = unused)
  std::uint64_t at_marker = 0;  ///< 1-based marker number (0 = unused)
  std::uint64_t at_site = 0;    ///< call-site id, fnv1a64(name) (0 = unused)
  std::uint64_t at_toolop = 0;  ///< 1-based tool-comm p2p op (0 = unused)

  // --- drop parameters ---
  Rank dest = kAnySource;     ///< receiver filter (kAnySource = any)
  double probability = 1.0;   ///< per-attempt drop probability

  // --- slowdown parameters ---
  std::uint64_t span_calls = 1;  ///< how many traced calls the slowdown lasts
  double slow_seconds = 0.0;     ///< extra virtual seconds per affected call
};

struct FaultPlan {
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 0;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// Parse the text form: one spec per line (or ';'-separated), '#' starts
  /// a comment. Throws std::invalid_argument on malformed input.
  static FaultPlan parse(const std::string& text, std::uint64_t seed = 0);

  [[nodiscard]] std::string to_string() const;
};

/// Consulted by the engine at fault points. Stateful (each crash fires at
/// most once; drop rolls consume RNG draws) but fully deterministic: the
/// RNG stream is a hash of (seed, src, dest, per-pair attempt counter).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Traced-call entry of `rank`. `call_index` and `marker_number` are
  /// 1-based engine counters; `site` is the innermost call-site id (0 when
  /// no site probe is installed). True => the rank crashes here.
  bool crash_at_call(Rank rank, std::uint64_t call_index,
                     std::uint64_t marker_number, std::uint64_t site);

  /// Tool-communicator p2p operation entry (send/irecv); `op_index` is a
  /// 1-based per-rank counter. Lets crashes land mid-reduction.
  bool crash_at_tool_op(Rank rank, std::uint64_t op_index);

  /// Extra virtual seconds to charge at this traced call (0 when no
  /// slowdown window covers it).
  [[nodiscard]] double slowdown(Rank rank, std::uint64_t call_index) const;

  /// One transmission attempt of a message src -> dest; true => dropped.
  bool drop_message(Rank src, Rank dest);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t crashes_injected() const { return crashes_; }
  [[nodiscard]] std::uint64_t drops_injected() const { return drops_; }

 private:
  bool fire_crash(std::size_t spec_index);

  FaultPlan plan_;
  std::vector<bool> fired_;  ///< per-spec: crash already delivered
  /// Per-(src,dest) attempt counters feeding the drop RNG stream.
  std::unordered_map<std::uint64_t, std::uint64_t> drop_attempts_;
  std::uint64_t crashes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace cham::sim
