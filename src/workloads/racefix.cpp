// RaceFix — the seeded-race fixture workload for ChamRace.
//
// Not a benchmark skeleton: a calibration target for the happens-before
// analyzer. Each timestep touches four annotated locations, two of them
// deliberately unsynchronized (the analyzer must find them) and two
// correctly ordered through messages and barriers (the analyzer must stay
// quiet about them):
//
//   racefix.shared_counter  every rank writes, no ordering  -> write-write
//   racefix.config          rank 0 writes, others read      -> write-read /
//                                                              read-write
//   racefix.token           ring handoff, ordered send->recv   (clean)
//   racefix.turn            barrier-separated turn-taking      (clean)
//
// tests/race/test_race_sim.cpp asserts exactly this split.
#include <string_view>

#include "analysis/race/annotate.hpp"
#include "workloads/kernels.hpp"

namespace cham::workloads::kernels {

using trace::CallScope;

int racefix_steps(char /*cls*/) { return 4; }

void run_racefix(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
                 const WorkloadParams& params) {
  const int steps =
      params.timesteps > 0 ? params.timesteps : racefix_steps(params.cls);
  const sim::Rank rank = mpi.rank();
  const int p = mpi.size();
  trace::CallStack& stack = stacks.stack(rank);

  CallScope main_scope(stack, "racefix.timestep");
  for (int step = 0; step < steps; ++step) {
    {
      CallScope scope(stack, "racefix.conflict");
      // Seeded conflict: every rank bumps the same counter with nothing
      // ordering the bumps within a timestep.
      RACE_WRITE("racefix.shared_counter", 0, 0);
      // Seeded conflict: rank 0 republishes a config blob that everyone
      // else reads without synchronization.
      if (rank == 0)
        RACE_WRITE("racefix.config", 0, 0);
      else
        RACE_READ("racefix.config", 0, 0);
      mpi.compute(1.0e-4);
    }
    {
      CallScope scope(stack, "racefix.handoff");
      // Negative control: a token handed around the ring. Every access is
      // ordered by the send->recv chain.
      if (p > 1) {
        if (rank == 0) {
          RACE_WRITE("racefix.token", 0, 0);
          mpi.send(1, 64, 7);
          mpi.recv(p - 1, 64, 7);
          RACE_READ("racefix.token", 0, 0);
        } else {
          mpi.recv(rank - 1, 64, 7);
          RACE_WRITE("racefix.token", 0, 0);
          mpi.send((rank + 1) % p, 64, 7);
        }
      } else {
        RACE_WRITE("racefix.token", 0, 0);
      }
    }
    {
      CallScope scope(stack, "racefix.turns");
      // Negative control: barrier-separated turn-taking on a shared slot.
      mpi.barrier();
      if (rank == step % p) RACE_WRITE("racefix.turn", 0, 0);
      mpi.barrier();
    }
    mpi.marker();
  }
}

}  // namespace cham::workloads::kernels
