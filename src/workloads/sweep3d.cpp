// Sweep3D — discrete-ordinates particle transport skeleton.
//
// The wavefront algorithm sweeps the 2-D process grid once per octant pair
// (4 diagonal directions x 2 angle groups): each rank receives the
// inflow faces from its upstream x/y neighbours, computes its block of the
// 100x100x1000 mesh, and forwards the outflow faces downstream. The grid
// is non-periodic in both dimensions, so corners, edges and the interior
// form up to 9 behaviour groups (Table I: K=9). The per-rank compute time
// varies with position in the wavefront — the load imbalance the paper
// notes is absorbed by the delta-time histograms.
#include <algorithm>
#include <array>
#include <string_view>

#include "workloads/grid.hpp"
#include "workloads/kernels.hpp"

namespace cham::workloads::kernels {

using trace::CallScope;

int sweep3d_steps(char cls) { return cls == 'D' ? 10 : 8; }

void run_sweep3d(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
                 const WorkloadParams& params) {
  const int steps =
      params.timesteps > 0 ? params.timesteps : sweep3d_steps(params.cls);
  const Grid2D grid = Grid2D::factor(mpi.size());
  // Problem 100x100x1000: face messages carry an i/j plane of the local
  // block for one angle block (k-blocking factor 10).
  const std::size_t face_bytes =
      static_cast<std::size_t>(std::max(1, 100 / grid.qx)) * 1000 / 10 * 8;
  trace::CallStack& stack = stacks.stack(mpi.rank());

  constexpr std::array<std::pair<int, int>, 4> kOctants = {
      {{+1, +1}, {-1, +1}, {+1, -1}, {-1, -1}}};
  constexpr std::array<std::string_view, 4> kOctantSites = {
      "sweep3d.octant_pp", "sweep3d.octant_mp", "sweep3d.octant_pm",
      "sweep3d.octant_mm"};

  CallScope main_scope(stack, "sweep3d.timestep");
  for (int step = 0; step < steps; ++step) {
    for (std::size_t oct = 0; oct < kOctants.size(); ++oct) {
      const auto [dx, dy] = kOctants[oct];
      CallScope scope(stack, kOctantSites[oct]);
      // Two angle groups per octant, pipelined.
      for (int angle = 0; angle < 2; ++angle) {
        const sim::Rank up_x = grid.neighbor(mpi.rank(), -dx, 0);
        const sim::Rank up_y = grid.neighbor(mpi.rank(), 0, -dy);
        const sim::Rank down_x = grid.neighbor(mpi.rank(), dx, 0);
        const sim::Rank down_y = grid.neighbor(mpi.rank(), 0, dy);
        if (up_x != sim::kAnySource) mpi.recv(up_x, face_bytes, 61);
        if (up_y != sim::kAnySource) mpi.recv(up_y, face_bytes, 62);
        // Wavefront position skews the compute load: downstream ranks do
        // more boundary work — the load imbalance the paper mentions.
        const double skew =
            1.0 + 0.1 * (grid.x_of(mpi.rank()) + grid.y_of(mpi.rank())) /
                      static_cast<double>(grid.qx + grid.qy);
        mpi.compute(0.002 * skew);
        if (down_x != sim::kAnySource) mpi.send(down_x, face_bytes, 61);
        if (down_y != sim::kAnySource) mpi.send(down_y, face_bytes, 62);
      }
    }
    {
      CallScope scope(stack, "sweep3d.flux_norm");
      mpi.allreduce(8);
    }
    mpi.marker();
  }
}

}  // namespace cham::workloads::kernels
