#include "workloads/workload.hpp"

#include <array>

#include "workloads/kernels.hpp"

namespace cham::workloads {

int class_grid_points(char cls) {
  switch (cls) {
    case 'A': return 64;
    case 'B': return 102;
    case 'C': return 162;
    case 'D': return 408;
    default: return 64;
  }
}

namespace {

// LU-modified and LU-weak reuse the LU kernel: the bench harness sets
// perturb_every / weak in the params; the registry entries differ only in
// documentation and defaults.
const std::array<WorkloadInfo, 10> kWorkloads = {{
    {"bt", "NPB BT: 1-D ADI solver skeleton, 3 directional sweeps/step",
     /*default_k=*/3, /*default_freq=*/25, kernels::bt_steps, kernels::run_bt},
    {"sp", "NPB SP: 1-D scalar-penta solver skeleton, lighter exchanges",
     /*default_k=*/3, /*default_freq=*/20, kernels::sp_steps, kernels::run_sp},
    {"lu", "NPB LU: 2-D SSOR wavefront skeleton (lower+upper sweeps + RHS)",
     /*default_k=*/9, /*default_freq=*/20, kernels::lu_steps, kernels::run_lu},
    {"luw", "NPB LU under weak scaling (per-rank problem size fixed)",
     /*default_k=*/9, /*default_freq=*/25, kernels::lu_steps, kernels::run_lu},
    {"lu_mod", "LU with periodic extra-barrier phase changes (Figure 10)",
     /*default_k=*/9, /*default_freq=*/1, kernels::lu_steps, kernels::run_lu},
    {"pop", "POP: 1-D halo + variable-depth convergence loop per timestep",
     /*default_k=*/3, /*default_freq=*/1, kernels::pop_steps, kernels::run_pop},
    {"sweep3d", "Sweep3D: 2-D wavefront octant sweeps with load imbalance",
     /*default_k=*/9, /*default_freq=*/1, kernels::sweep3d_steps,
     kernels::run_sweep3d},
    {"emf", "ElasticMedFlow: master/worker DNA pipeline over 9 stages",
     /*default_k=*/2, /*default_freq=*/4, kernels::emf_steps, kernels::run_emf},
    {"cg", "NPB CG: SpMV skeleton with ring exchange and reductions",
     /*default_k=*/3, /*default_freq=*/15, kernels::cg_steps, kernels::run_cg},
    {"racefix", "ChamRace fixture: seeded conflicts + clean controls",
     /*default_k=*/2, /*default_freq=*/1, kernels::racefix_steps,
     kernels::run_racefix},
}};

}  // namespace

const WorkloadInfo* find_workload(std::string_view name) {
  for (const auto& info : kWorkloads) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::span<const WorkloadInfo> all_workloads() { return kWorkloads; }

}  // namespace cham::workloads
