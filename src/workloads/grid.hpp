// Process-grid helpers for the workload skeletons.
#pragma once

#include <cmath>

#include "sim/types.hpp"

namespace cham::workloads {

/// Balanced 2-D factorization of P (qx * qy == P, qx <= qy, qx maximal).
struct Grid2D {
  int qx = 1;
  int qy = 1;

  static Grid2D factor(int nprocs) {
    int qx = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
    while (qx > 1 && nprocs % qx != 0) --qx;
    return Grid2D{qx, nprocs / qx};
  }

  [[nodiscard]] int x_of(sim::Rank r) const { return r % qx; }
  [[nodiscard]] int y_of(sim::Rank r) const { return r / qx; }
  [[nodiscard]] sim::Rank at(int x, int y) const { return y * qx + x; }

  /// Neighbour in the given direction, or kAnySource (-1) outside the grid.
  [[nodiscard]] sim::Rank neighbor(sim::Rank r, int dx, int dy) const {
    const int x = x_of(r) + dx;
    const int y = y_of(r) + dy;
    if (x < 0 || x >= qx || y < 0 || y >= qy) return sim::kAnySource;
    return at(x, y);
  }
};

}  // namespace cham::workloads
