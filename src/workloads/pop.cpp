// POP — Parallel Ocean Program skeleton.
//
// One timestep = baroclinic compute + a data-dependent barotropic solver
// loop whose depth varies per timestep (the paper's "different
// data-dependent convergence points in timestep computation"). The halo
// pattern itself stays regular — a 1-D non-periodic chain, 3 behaviour
// groups — which is why Chameleon replays POP with only 3 clusters: the
// varying iteration counts never change the set of distinct stack
// signatures (the automatic parameter filter of [2] falls out of the
// Call-Path definition), and the varying compute lands in the delta-time
// histograms.
#include <algorithm>

#include "support/rng.hpp"
#include "workloads/kernels.hpp"

namespace cham::workloads::kernels {

using trace::CallScope;

int pop_steps(char cls) { return cls == 'D' ? 20 : 15; }

void run_pop(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
             const WorkloadParams& params) {
  const int steps =
      params.timesteps > 0 ? params.timesteps : pop_steps(params.cls);
  // One-degree grid: 896x896 blocks of 16x16; halo = row of blocks.
  const std::size_t halo_bytes =
      static_cast<std::size_t>(896) * 16 * 8 / std::max(1, mpi.size() / 32);
  trace::CallStack& stack = stacks.stack(mpi.rank());
  // Seeded per run (not per rank): the solver depth is a global property
  // of the timestep; per-rank load imbalance is modelled in compute time.
  support::Rng convergence(params.seed);
  support::Rng load(params.seed ^ (static_cast<std::uint64_t>(mpi.rank()) << 20));

  const sim::Rank lo = mpi.rank() - 1;
  const sim::Rank hi = mpi.rank() + 1;

  CallScope main_scope(stack, "pop.timestep");
  for (int step = 0; step < steps; ++step) {
    {
      CallScope scope(stack, "pop.baroclinic");
      mpi.compute(0.01 * (0.8 + 0.4 * load.next_double()));
      std::vector<sim::Request> reqs;
      if (lo >= 0) reqs.push_back(mpi.irecv(lo, halo_bytes, 51));
      if (hi < mpi.size()) reqs.push_back(mpi.irecv(hi, halo_bytes, 51));
      if (lo >= 0) reqs.push_back(mpi.isend(lo, halo_bytes, 51));
      if (hi < mpi.size()) reqs.push_back(mpi.isend(hi, halo_bytes, 51));
      mpi.waitall(reqs);
    }
    {
      CallScope scope(stack, "pop.barotropic");
      // Conjugate-gradient solver: depth varies per timestep (3..10).
      const int inner = 3 + static_cast<int>(convergence.next_below(8));
      for (int it = 0; it < inner; ++it) {
        CallScope inner_scope(stack, "pop.barotropic.cg");
        mpi.compute(0.001 * (0.8 + 0.4 * load.next_double()));
        std::vector<sim::Request> reqs;
        if (lo >= 0) reqs.push_back(mpi.irecv(lo, halo_bytes / 4, 52));
        if (hi < mpi.size()) reqs.push_back(mpi.irecv(hi, halo_bytes / 4, 52));
        if (lo >= 0) reqs.push_back(mpi.isend(lo, halo_bytes / 4, 52));
        if (hi < mpi.size()) reqs.push_back(mpi.isend(hi, halo_bytes / 4, 52));
        mpi.waitall(reqs);
        mpi.allreduce(8);  // residual norm / convergence check
      }
    }
    {
      CallScope scope(stack, "pop.diagnostics");
      mpi.allreduce(3 * 8);
    }
    mpi.marker();
  }
}

}  // namespace cham::workloads::kernels
