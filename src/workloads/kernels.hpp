// Internal: per-benchmark kernel entry points (registered in workload.cpp).
#pragma once

#include "workloads/workload.hpp"

namespace cham::workloads::kernels {

void run_bt(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params);
void run_sp(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params);
void run_lu(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params);
void run_pop(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
             const WorkloadParams& params);
void run_sweep3d(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
                 const WorkloadParams& params);
void run_emf(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
             const WorkloadParams& params);
void run_cg(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params);
void run_racefix(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
                 const WorkloadParams& params);

int bt_steps(char cls);
int sp_steps(char cls);
int lu_steps(char cls);
int pop_steps(char cls);
int sweep3d_steps(char cls);
int emf_steps(char cls);
int cg_steps(char cls);
int racefix_steps(char cls);

}  // namespace cham::workloads::kernels
