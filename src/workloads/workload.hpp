// Benchmark communication skeletons.
//
// Each workload reproduces the MPI *call structure* of one of the paper's
// benchmarks — phases, call sites, endpoint geometry, message-size scaling
// with NPB input class, iteration counts, markers at timestep boundaries —
// while computation advances the virtual clock. Chameleon only ever sees
// MPI events and their calling contexts, so a faithful skeleton produces
// the same signatures, clusters and trace shapes as the full benchmark.
//
// Geometry drives Table I's cluster counts: one non-periodic decomposition
// dimension yields 3 behaviour groups (two boundaries + interior: BT, SP,
// POP — K=3), two non-periodic dimensions yield up to 9 (corners, edges,
// interior: LU, Sweep3D — K=9), master/worker yields 2 (EMF — K=2).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "sim/mpi.hpp"
#include "trace/callsite.hpp"

namespace cham::workloads {

struct WorkloadParams {
  /// NPB input class: 'A', 'B', 'C', 'D' (problem size scaling).
  char cls = 'D';
  /// Timesteps / outer iterations; 0 selects the class default (Table II).
  int timesteps = 0;
  /// LU-modified (Figure 10): every Nth timestep executes an extra barrier
  /// from a distinct call site, forcing a Call-Path change. 0 disables.
  int perturb_every = 0;
  /// Weak scaling: per-rank problem size fixed (message bytes independent
  /// of P instead of shrinking with it).
  bool weak = false;
  /// Seed for data-dependent behaviour (POP convergence, EMF task mix).
  std::uint64_t seed = 1;
};

struct WorkloadInfo {
  std::string_view name;
  std::string_view description;
  /// Cluster budget the paper fixed for this benchmark (Table I).
  std::size_t default_k;
  /// Chameleon Call_Frequency from Table II (class D, P=1024 row).
  int default_freq;
  /// Class-default timestep count (Table II's #Iters).
  int (*default_steps)(char cls);
  /// Execute one rank. The registry stack is used for CallScope branding.
  void (*run)(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
              const WorkloadParams& params);
};

/// nullptr if unknown. Known names: bt, sp, lu, luw, lu_mod, pop, sweep3d,
/// emf, cg, racefix.
const WorkloadInfo* find_workload(std::string_view name);

std::span<const WorkloadInfo> all_workloads();

/// NPB-style cube edge for an input class (A=64 … D=408).
int class_grid_points(char cls);

}  // namespace cham::workloads
