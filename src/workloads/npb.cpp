// NPB-style skeletons: BT, SP, LU (incl. weak scaling / LU-modified), CG.
//
// BT and SP decompose along one dimension (a non-periodic chain): the two
// boundary ranks and the interior form the 3 behaviour groups Table I's
// K=3 covers exactly. LU runs 2-D SSOR wavefronts (lower + upper sweeps)
// over a non-periodic 2-D grid: corners, edges and interior form up to 9
// groups (K=9). CG approximates the SpMV transpose exchange with a modular
// ring — irregular *computation* (sparse rows) but regular communication,
// which is why clustering is untouched by it (§V "Irregular codes").
#include <algorithm>
#include <array>

#include "support/rng.hpp"
#include "workloads/grid.hpp"
#include "workloads/kernels.hpp"

namespace cham::workloads::kernels {

using trace::CallScope;

namespace {

/// Face bytes for a 1-D decomposition of an n^3 cube across P ranks:
/// the full n x n plane (5 solution variables, 8-byte reals).
std::size_t chain_face_bytes(char cls, int /*nprocs*/, bool weak) {
  const auto n = static_cast<std::size_t>(class_grid_points(cls));
  const std::size_t full = n * n * 5 * 8;
  // Weak scaling keeps the per-rank surface fixed at the class-A shape.
  if (weak) {
    const auto a = static_cast<std::size_t>(class_grid_points('A'));
    return a * a * 5 * 8;
  }
  return full;
}

/// Per-step compute seconds for the local subgrid (virtual time).
double chain_compute_seconds(char cls, int nprocs, bool weak) {
  const double n = class_grid_points(cls);
  const double points = weak ? 64.0 * 64.0 * 64.0  // fixed per-rank volume
                             : n * n * n / std::max(1, nprocs);
  return points * 2.5e-9;  // ~flops per point at a few GFLOP/s
}

/// Bidirectional halo exchange with chain neighbours (non-periodic).
void chain_exchange(sim::Mpi& mpi, std::size_t bytes, int tag) {
  const sim::Rank lo = mpi.rank() - 1;
  const sim::Rank hi = mpi.rank() + 1;
  std::vector<sim::Request> reqs;
  if (lo >= 0) reqs.push_back(mpi.irecv(lo, bytes, tag));
  if (hi < mpi.size()) reqs.push_back(mpi.irecv(hi, bytes, tag));
  if (lo >= 0) reqs.push_back(mpi.isend(lo, bytes, tag));
  if (hi < mpi.size()) reqs.push_back(mpi.isend(hi, bytes, tag));
  mpi.waitall(reqs);
}

int steps_or_default(const WorkloadParams& params, int dflt) {
  return params.timesteps > 0 ? params.timesteps : dflt;
}

}  // namespace

// ---------------------------------------------------------------------------
// BT — block tridiagonal ADI: three directional sweeps per timestep.
// ---------------------------------------------------------------------------

int bt_steps(char cls) { return cls == 'D' ? 250 : 200; }

void run_bt(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params) {
  const int steps = steps_or_default(params, bt_steps(params.cls));
  const std::size_t bytes = chain_face_bytes(params.cls, mpi.size(), params.weak);
  const double compute = chain_compute_seconds(params.cls, mpi.size(), params.weak);
  trace::CallStack& stack = stacks.stack(mpi.rank());

  CallScope main_scope(stack, "bt.adi");
  for (int step = 0; step < steps; ++step) {
    {
      CallScope scope(stack, "bt.x_solve");
      mpi.compute(compute / 3);
      chain_exchange(mpi, bytes, 11);
    }
    {
      CallScope scope(stack, "bt.y_solve");
      mpi.compute(compute / 3);
      chain_exchange(mpi, bytes, 12);
    }
    {
      CallScope scope(stack, "bt.z_solve");
      mpi.compute(compute / 3);
      chain_exchange(mpi, bytes, 13);
    }
    mpi.marker();
  }
  // Verification norm, once at the end (NPB computes norms at itmax only).
  CallScope verify_scope(stack, "bt.verify");
  mpi.allreduce(5 * 8);
}

// ---------------------------------------------------------------------------
// SP — scalar pentadiagonal: same chain geometry, lighter per-step traffic.
// ---------------------------------------------------------------------------

int sp_steps(char cls) { return cls == 'D' ? 500 : 400; }

void run_sp(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params) {
  const int steps = steps_or_default(params, sp_steps(params.cls));
  const std::size_t bytes =
      chain_face_bytes(params.cls, mpi.size(), params.weak) / 5;
  const double compute =
      chain_compute_seconds(params.cls, mpi.size(), params.weak) / 2;
  trace::CallStack& stack = stacks.stack(mpi.rank());

  CallScope main_scope(stack, "sp.adi");
  for (int step = 0; step < steps; ++step) {
    {
      CallScope scope(stack, "sp.solve");
      mpi.compute(compute);
      chain_exchange(mpi, bytes, 21);
    }
    mpi.marker();
  }
  CallScope verify_scope(stack, "sp.verify");
  mpi.allreduce(5 * 8);
}

// ---------------------------------------------------------------------------
// LU — 2-D SSOR: lower/upper wavefront sweeps + RHS halo exchange.
// Handles weak scaling (params.weak) and the Figure-10 perturbation
// (params.perturb_every).
// ---------------------------------------------------------------------------

int lu_steps(char cls) { return cls == 'D' ? 300 : 250; }

namespace {

/// One triangular wavefront sweep over a non-periodic 2-D grid: receive
/// from the upstream neighbours, compute, forward downstream. dx/dy = +1
/// for the lower sweep (from the NW corner), -1 for the upper sweep.
void lu_sweep(sim::Mpi& mpi, const Grid2D& grid, int dx, int dy,
              std::size_t bytes, double compute, int tag) {
  const sim::Rank up_x = grid.neighbor(mpi.rank(), -dx, 0);
  const sim::Rank up_y = grid.neighbor(mpi.rank(), 0, -dy);
  const sim::Rank down_x = grid.neighbor(mpi.rank(), dx, 0);
  const sim::Rank down_y = grid.neighbor(mpi.rank(), 0, dy);
  if (up_x != sim::kAnySource) mpi.recv(up_x, bytes, tag);
  if (up_y != sim::kAnySource) mpi.recv(up_y, bytes, tag);
  mpi.compute(compute);
  if (down_x != sim::kAnySource) mpi.send(down_x, bytes, tag);
  if (down_y != sim::kAnySource) mpi.send(down_y, bytes, tag);
}

}  // namespace

void run_lu(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params) {
  const int steps = steps_or_default(params, lu_steps(params.cls));
  const Grid2D grid = Grid2D::factor(mpi.size());
  const int n = class_grid_points(params.cls);
  // Pencil surface for the wavefront messages. As in real NPB, n is rarely
  // divisible by the grid: boundary columns own one extra point, so the
  // message sizes vary with grid position — the across-rank heterogeneity
  // that makes ScalaTrace's merged traces grow (and its inter-compression
  // expensive) while Chameleon's clusters absorb it. Fixed per rank under
  // weak scaling.
  const int local_x = n / grid.qx + (grid.x_of(mpi.rank()) < n % grid.qx ? 1 : 0);
  const int local_y = n / grid.qy + (grid.y_of(mpi.rank()) < n % grid.qy ? 1 : 0);
  const std::size_t bytes =
      params.weak ? static_cast<std::size_t>(64) * 64 * 8
                  : static_cast<std::size_t>(std::max(1, (local_x + local_y) / 2)) *
                        static_cast<std::size_t>(n) * 8;
  const double compute =
      params.weak
          ? 64.0 * 64.0 * 64.0 * 2.5e-9
          : static_cast<double>(n) * n * n / mpi.size() * 2.5e-9;
  trace::CallStack& stack = stacks.stack(mpi.rank());

  CallScope main_scope(stack, "lu.ssor");
  for (int step = 0; step < steps; ++step) {
    {
      CallScope scope(stack, "lu.blts");  // lower triangular sweep
      lu_sweep(mpi, grid, +1, +1, bytes, compute / 3, 31);
    }
    {
      CallScope scope(stack, "lu.buts");  // upper triangular sweep
      lu_sweep(mpi, grid, -1, -1, bytes, compute / 3, 32);
    }
    {
      CallScope scope(stack, "lu.rhs");  // full halo for the RHS
      mpi.compute(compute / 3);
      std::vector<sim::Request> reqs;
      constexpr std::array<std::pair<int, int>, 4> kDirs = {
          {{-1, 0}, {+1, 0}, {0, -1}, {0, +1}}};
      for (const auto& [dx, dy] : kDirs) {
        const sim::Rank peer = grid.neighbor(mpi.rank(), dx, dy);
        if (peer == sim::kAnySource) continue;
        reqs.push_back(mpi.irecv(peer, bytes, 33));
        reqs.push_back(mpi.isend(peer, bytes, 33));
      }
      mpi.waitall(reqs);
    }
    if (params.perturb_every > 0 && (step + 1) % params.perturb_every == 0) {
      // Figure 10: an extra barrier from a distinct call site makes the
      // interval's Call-Path differ, forcing a phase change + re-cluster.
      CallScope scope(stack, "lu.injected_phase");
      mpi.barrier();
    }
    mpi.marker();
  }
  // Convergence norm once at the end (NPB LU's inorm defaults to itmax).
  CallScope verify_scope(stack, "lu.norm");
  mpi.allreduce(5 * 8);
}

// ---------------------------------------------------------------------------
// CG — conjugate gradient SpMV skeleton: modular ring exchange (uniform
// geometry) + dot-product reductions; irregular per-rank compute from the
// sparse row distribution.
// ---------------------------------------------------------------------------

int cg_steps(char cls) { return cls == 'D' ? 100 : 75; }

void run_cg(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
            const WorkloadParams& params) {
  const int steps = steps_or_default(params, cg_steps(params.cls));
  const int n = class_grid_points(params.cls);
  const std::size_t bytes =
      static_cast<std::size_t>(n) * n * 8 / std::max(1, mpi.size());
  trace::CallStack& stack = stacks.stack(mpi.rank());
  support::Rng rng(params.seed ^ static_cast<std::uint64_t>(mpi.rank()));

  CallScope main_scope(stack, "cg.solve");
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    {
      CallScope scope(stack, "cg.spmv");
      // Sparse rows make compute irregular; communication stays regular.
      const double nnz_factor = 0.5 + rng.next_double();
      mpi.compute(static_cast<double>(n) * n / p * 1e-9 * nnz_factor);
      const sim::Rank next = (mpi.rank() + 1) % p;
      const sim::Rank prev = (mpi.rank() + p - 1) % p;
      std::vector<sim::Request> reqs;
      reqs.push_back(mpi.irecv(prev, bytes, 41));
      reqs.push_back(mpi.isend(next, bytes, 41));
      mpi.waitall(reqs);
    }
    {
      CallScope scope(stack, "cg.dot");
      mpi.allreduce(8);
      mpi.allreduce(8);
    }
    mpi.marker();
  }
}

}  // namespace cham::workloads::kernels
