// ElasticMedFlow — master/worker medical-pipeline skeleton.
//
// Rank 0 drives a 9-stage DNA preprocessing pipeline over 1000 patient
// datasets x 4 sequences (36,000 tasks total): per iteration the master
// hands one task to every worker and collects one result (wildcard
// receive). Table II fixes iterations x (P-1) ~ tasks: 288@126, 144@251,
// 72@501, 36@1001. Workers address the master as an *absolute* endpoint —
// the mpi4py-level adaptation the paper made ("we modified mpi4py to
// support ScalaTrace and Chameleon") — so that the clustered worker trace
// replays correctly on every worker. Two Call-Paths (master, worker) give
// Table I's K=2.
#include <algorithm>

#include "support/rng.hpp"
#include "workloads/kernels.hpp"

namespace cham::workloads::kernels {

using trace::CallScope;

int emf_steps(char /*cls*/) { return 36; }  // overridden per P by the bench

void run_emf(sim::Mpi& mpi, trace::CallSiteRegistry& stacks,
             const WorkloadParams& params) {
  // 1000 patients x 4 sequences x 9 stages, spread over P-1 workers.
  const int workers = std::max(1, mpi.size() - 1);
  const int iterations = params.timesteps > 0
                             ? params.timesteps
                             : std::max(1, 36000 / workers);
  // FASTQ chunk in, alignment summary out.
  constexpr std::size_t kTaskBytes = 64 * 1024;
  constexpr std::size_t kResultBytes = 4 * 1024;
  trace::CallStack& stack = stacks.stack(mpi.rank());
  support::Rng task_mix(params.seed ^ static_cast<std::uint64_t>(mpi.rank()));

  if (mpi.rank() == 0) {
    CallScope master_scope(stack, "emf.master");
    for (int iter = 0; iter < iterations; ++iter) {
      {
        CallScope scope(stack, "emf.master.dispatch");
        for (sim::Rank w = 1; w < mpi.size(); ++w)
          mpi.send(w, kTaskBytes, /*tag=*/71);
      }
      {
        CallScope scope(stack, "emf.master.collect");
        for (sim::Rank w = 1; w < mpi.size(); ++w)
          mpi.recv(sim::kAnySource, kResultBytes, 72);
      }
      mpi.marker();
    }
  } else {
    CallScope worker_scope(stack, "emf.worker");
    for (int iter = 0; iter < iterations; ++iter) {
      {
        CallScope scope(stack, "emf.worker.stage");
        mpi.recv(0, kTaskBytes, 71, nullptr, /*absolute_peer=*/true);
        // Pipeline stage cost varies moderately with the dataset
        // (alignment depth); the per-iteration bottleneck is the slowest
        // worker, which replay approximates with the histogram mean — the
        // source of EMF's below-90% replay accuracy in the paper.
        mpi.compute(0.005 * (0.87 + 0.26 * task_mix.next_double()));
        mpi.send(0, kResultBytes, 72, {}, /*absolute_peer=*/true);
      }
      mpi.marker();
    }
  }
}

}  // namespace cham::workloads::kernels
