file(REMOVE_RECURSE
  "CMakeFiles/replay_demo.dir/replay_demo.cpp.o"
  "CMakeFiles/replay_demo.dir/replay_demo.cpp.o.d"
  "replay_demo"
  "replay_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
