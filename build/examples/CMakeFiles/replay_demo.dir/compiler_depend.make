# Empty compiler generated dependencies file for replay_demo.
# This may be replaced when dependencies are built.
