file(REMOVE_RECURSE
  "CMakeFiles/stencil_tracing.dir/stencil_tracing.cpp.o"
  "CMakeFiles/stencil_tracing.dir/stencil_tracing.cpp.o.d"
  "stencil_tracing"
  "stencil_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
