# Empty compiler generated dependencies file for stencil_tracing.
# This may be replaced when dependencies are built.
