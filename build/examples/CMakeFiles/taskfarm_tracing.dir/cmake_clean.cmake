file(REMOVE_RECURSE
  "CMakeFiles/taskfarm_tracing.dir/taskfarm_tracing.cpp.o"
  "CMakeFiles/taskfarm_tracing.dir/taskfarm_tracing.cpp.o.d"
  "taskfarm_tracing"
  "taskfarm_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskfarm_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
