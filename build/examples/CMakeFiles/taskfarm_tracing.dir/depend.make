# Empty dependencies file for taskfarm_tracing.
# This may be replaced when dependencies are built.
