# Empty dependencies file for bench_fig9_marker_frequency.
# This may be replaced when dependencies are built.
