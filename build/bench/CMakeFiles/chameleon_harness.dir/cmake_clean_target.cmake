file(REMOVE_RECURSE
  "../lib/libchameleon_harness.a"
)
