# Empty compiler generated dependencies file for chameleon_harness.
# This may be replaced when dependencies are built.
