file(REMOVE_RECURSE
  "../lib/libchameleon_harness.a"
  "../lib/libchameleon_harness.pdb"
  "CMakeFiles/chameleon_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/chameleon_harness.dir/harness/experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
