# Empty dependencies file for bench_fig11_problem_sizes.
# This may be replaced when dependencies are built.
