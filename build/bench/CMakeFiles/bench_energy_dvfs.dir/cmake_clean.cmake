file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_dvfs.dir/bench_energy_dvfs.cpp.o"
  "CMakeFiles/bench_energy_dvfs.dir/bench_energy_dvfs.cpp.o.d"
  "bench_energy_dvfs"
  "bench_energy_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
