# Empty compiler generated dependencies file for bench_energy_dvfs.
# This may be replaced when dependencies are built.
