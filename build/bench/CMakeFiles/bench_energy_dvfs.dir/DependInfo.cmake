
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_energy_dvfs.cpp" "bench/CMakeFiles/bench_energy_dvfs.dir/bench_energy_dvfs.cpp.o" "gcc" "bench/CMakeFiles/bench_energy_dvfs.dir/bench_energy_dvfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/chameleon_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chameleon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/chameleon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/chameleon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/chameleon_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chameleon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chameleon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/chameleon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
