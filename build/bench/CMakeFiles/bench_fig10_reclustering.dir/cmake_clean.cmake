file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_reclustering.dir/bench_fig10_reclustering.cpp.o"
  "CMakeFiles/bench_fig10_reclustering.dir/bench_fig10_reclustering.cpp.o.d"
  "bench_fig10_reclustering"
  "bench_fig10_reclustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_reclustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
