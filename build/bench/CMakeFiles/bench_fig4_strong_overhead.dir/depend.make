# Empty dependencies file for bench_fig4_strong_overhead.
# This may be replaced when dependencies are built.
