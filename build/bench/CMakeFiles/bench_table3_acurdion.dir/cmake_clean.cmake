file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_acurdion.dir/bench_table3_acurdion.cpp.o"
  "CMakeFiles/bench_table3_acurdion.dir/bench_table3_acurdion.cpp.o.d"
  "bench_table3_acurdion"
  "bench_table3_acurdion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_acurdion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
