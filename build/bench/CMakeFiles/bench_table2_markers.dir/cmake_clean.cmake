file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_markers.dir/bench_table2_markers.cpp.o"
  "CMakeFiles/bench_table2_markers.dir/bench_table2_markers.cpp.o.d"
  "bench_table2_markers"
  "bench_table2_markers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_markers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
