# Empty compiler generated dependencies file for bench_fig5_strong_replay.
# This may be replaced when dependencies are built.
