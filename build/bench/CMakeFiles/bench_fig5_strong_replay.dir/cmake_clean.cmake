file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_strong_replay.dir/bench_fig5_strong_replay.cpp.o"
  "CMakeFiles/bench_fig5_strong_replay.dir/bench_fig5_strong_replay.cpp.o.d"
  "bench_fig5_strong_replay"
  "bench_fig5_strong_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_strong_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
