# Empty dependencies file for chamtrace.
# This may be replaced when dependencies are built.
