file(REMOVE_RECURSE
  "CMakeFiles/chamtrace.dir/chamtrace.cpp.o"
  "CMakeFiles/chamtrace.dir/chamtrace.cpp.o.d"
  "chamtrace"
  "chamtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chamtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
