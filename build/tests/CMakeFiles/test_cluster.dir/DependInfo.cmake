
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/test_clusterset.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_clusterset.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_clusterset.cpp.o.d"
  "/root/repo/tests/cluster/test_select.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_select.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_select.cpp.o.d"
  "/root/repo/tests/cluster/test_signature.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_signature.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/chameleon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chameleon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chameleon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/chameleon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
