file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_acurdion.cpp.o"
  "CMakeFiles/test_core.dir/core/test_acurdion.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_auto_marker.cpp.o"
  "CMakeFiles/test_core.dir/core/test_auto_marker.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_chameleon.cpp.o"
  "CMakeFiles/test_core.dir/core/test_chameleon.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
