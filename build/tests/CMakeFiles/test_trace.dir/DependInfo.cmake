
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_merge.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_merge.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_merge.cpp.o.d"
  "/root/repo/tests/trace/test_properties.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_properties.cpp.o.d"
  "/root/repo/tests/trace/test_ranklist.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_ranklist.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_ranklist.cpp.o.d"
  "/root/repo/tests/trace/test_rsd.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_rsd.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_rsd.cpp.o.d"
  "/root/repo/tests/trace/test_serialize.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_serialize.cpp.o.d"
  "/root/repo/tests/trace/test_tracer.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_tracer.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/chameleon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chameleon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/chameleon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
