
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_collectives.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o.d"
  "/root/repo/tests/sim/test_fiber.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_fiber.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_fiber.cpp.o.d"
  "/root/repo/tests/sim/test_hooks.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_hooks.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_hooks.cpp.o.d"
  "/root/repo/tests/sim/test_p2p.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_p2p.cpp.o.d"
  "/root/repo/tests/sim/test_vtime.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_vtime.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_vtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/chameleon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/chameleon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
