file(REMOVE_RECURSE
  "CMakeFiles/chameleon_cluster.dir/clusterset.cpp.o"
  "CMakeFiles/chameleon_cluster.dir/clusterset.cpp.o.d"
  "CMakeFiles/chameleon_cluster.dir/select.cpp.o"
  "CMakeFiles/chameleon_cluster.dir/select.cpp.o.d"
  "CMakeFiles/chameleon_cluster.dir/signature.cpp.o"
  "CMakeFiles/chameleon_cluster.dir/signature.cpp.o.d"
  "libchameleon_cluster.a"
  "libchameleon_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
