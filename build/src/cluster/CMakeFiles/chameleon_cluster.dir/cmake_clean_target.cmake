file(REMOVE_RECURSE
  "libchameleon_cluster.a"
)
