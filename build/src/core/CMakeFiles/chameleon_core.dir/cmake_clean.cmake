file(REMOVE_RECURSE
  "CMakeFiles/chameleon_core.dir/acurdion.cpp.o"
  "CMakeFiles/chameleon_core.dir/acurdion.cpp.o.d"
  "CMakeFiles/chameleon_core.dir/chameleon.cpp.o"
  "CMakeFiles/chameleon_core.dir/chameleon.cpp.o.d"
  "CMakeFiles/chameleon_core.dir/energy.cpp.o"
  "CMakeFiles/chameleon_core.dir/energy.cpp.o.d"
  "CMakeFiles/chameleon_core.dir/protocol.cpp.o"
  "CMakeFiles/chameleon_core.dir/protocol.cpp.o.d"
  "libchameleon_core.a"
  "libchameleon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
