file(REMOVE_RECURSE
  "libchameleon_core.a"
)
