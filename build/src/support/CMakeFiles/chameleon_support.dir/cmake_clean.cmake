file(REMOVE_RECURSE
  "CMakeFiles/chameleon_support.dir/csv.cpp.o"
  "CMakeFiles/chameleon_support.dir/csv.cpp.o.d"
  "CMakeFiles/chameleon_support.dir/histogram.cpp.o"
  "CMakeFiles/chameleon_support.dir/histogram.cpp.o.d"
  "CMakeFiles/chameleon_support.dir/logging.cpp.o"
  "CMakeFiles/chameleon_support.dir/logging.cpp.o.d"
  "CMakeFiles/chameleon_support.dir/memtrack.cpp.o"
  "CMakeFiles/chameleon_support.dir/memtrack.cpp.o.d"
  "CMakeFiles/chameleon_support.dir/stats.cpp.o"
  "CMakeFiles/chameleon_support.dir/stats.cpp.o.d"
  "CMakeFiles/chameleon_support.dir/table.cpp.o"
  "CMakeFiles/chameleon_support.dir/table.cpp.o.d"
  "libchameleon_support.a"
  "libchameleon_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
