file(REMOVE_RECURSE
  "CMakeFiles/chameleon_sim.dir/engine.cpp.o"
  "CMakeFiles/chameleon_sim.dir/engine.cpp.o.d"
  "CMakeFiles/chameleon_sim.dir/fiber.cpp.o"
  "CMakeFiles/chameleon_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/chameleon_sim.dir/mpi.cpp.o"
  "CMakeFiles/chameleon_sim.dir/mpi.cpp.o.d"
  "CMakeFiles/chameleon_sim.dir/types.cpp.o"
  "CMakeFiles/chameleon_sim.dir/types.cpp.o.d"
  "libchameleon_sim.a"
  "libchameleon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
