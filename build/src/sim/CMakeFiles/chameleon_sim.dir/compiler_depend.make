# Empty compiler generated dependencies file for chameleon_sim.
# This may be replaced when dependencies are built.
