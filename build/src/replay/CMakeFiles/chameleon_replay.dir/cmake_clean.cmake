file(REMOVE_RECURSE
  "CMakeFiles/chameleon_replay.dir/interp.cpp.o"
  "CMakeFiles/chameleon_replay.dir/interp.cpp.o.d"
  "CMakeFiles/chameleon_replay.dir/replayer.cpp.o"
  "CMakeFiles/chameleon_replay.dir/replayer.cpp.o.d"
  "libchameleon_replay.a"
  "libchameleon_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
