file(REMOVE_RECURSE
  "libchameleon_replay.a"
)
