# Empty dependencies file for chameleon_replay.
# This may be replaced when dependencies are built.
