file(REMOVE_RECURSE
  "libchameleon_trace.a"
)
