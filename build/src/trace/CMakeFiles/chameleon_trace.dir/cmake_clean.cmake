file(REMOVE_RECURSE
  "CMakeFiles/chameleon_trace.dir/event.cpp.o"
  "CMakeFiles/chameleon_trace.dir/event.cpp.o.d"
  "CMakeFiles/chameleon_trace.dir/merge.cpp.o"
  "CMakeFiles/chameleon_trace.dir/merge.cpp.o.d"
  "CMakeFiles/chameleon_trace.dir/ranklist.cpp.o"
  "CMakeFiles/chameleon_trace.dir/ranklist.cpp.o.d"
  "CMakeFiles/chameleon_trace.dir/rsd.cpp.o"
  "CMakeFiles/chameleon_trace.dir/rsd.cpp.o.d"
  "CMakeFiles/chameleon_trace.dir/serialize.cpp.o"
  "CMakeFiles/chameleon_trace.dir/serialize.cpp.o.d"
  "CMakeFiles/chameleon_trace.dir/tracer.cpp.o"
  "CMakeFiles/chameleon_trace.dir/tracer.cpp.o.d"
  "libchameleon_trace.a"
  "libchameleon_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
