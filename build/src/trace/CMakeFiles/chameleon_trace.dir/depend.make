# Empty dependencies file for chameleon_trace.
# This may be replaced when dependencies are built.
