file(REMOVE_RECURSE
  "CMakeFiles/chameleon_workloads.dir/emf.cpp.o"
  "CMakeFiles/chameleon_workloads.dir/emf.cpp.o.d"
  "CMakeFiles/chameleon_workloads.dir/npb.cpp.o"
  "CMakeFiles/chameleon_workloads.dir/npb.cpp.o.d"
  "CMakeFiles/chameleon_workloads.dir/pop.cpp.o"
  "CMakeFiles/chameleon_workloads.dir/pop.cpp.o.d"
  "CMakeFiles/chameleon_workloads.dir/sweep3d.cpp.o"
  "CMakeFiles/chameleon_workloads.dir/sweep3d.cpp.o.d"
  "CMakeFiles/chameleon_workloads.dir/workload.cpp.o"
  "CMakeFiles/chameleon_workloads.dir/workload.cpp.o.d"
  "libchameleon_workloads.a"
  "libchameleon_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
