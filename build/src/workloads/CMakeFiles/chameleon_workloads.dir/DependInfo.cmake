
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/emf.cpp" "src/workloads/CMakeFiles/chameleon_workloads.dir/emf.cpp.o" "gcc" "src/workloads/CMakeFiles/chameleon_workloads.dir/emf.cpp.o.d"
  "/root/repo/src/workloads/npb.cpp" "src/workloads/CMakeFiles/chameleon_workloads.dir/npb.cpp.o" "gcc" "src/workloads/CMakeFiles/chameleon_workloads.dir/npb.cpp.o.d"
  "/root/repo/src/workloads/pop.cpp" "src/workloads/CMakeFiles/chameleon_workloads.dir/pop.cpp.o" "gcc" "src/workloads/CMakeFiles/chameleon_workloads.dir/pop.cpp.o.d"
  "/root/repo/src/workloads/sweep3d.cpp" "src/workloads/CMakeFiles/chameleon_workloads.dir/sweep3d.cpp.o" "gcc" "src/workloads/CMakeFiles/chameleon_workloads.dir/sweep3d.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/chameleon_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/chameleon_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/chameleon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chameleon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/chameleon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
